/**
 * @file
 * The paper's motivating example (Figure 3): a linked list whose
 * elements are read twice per traversal, from two different functions
 * ("foo" accumulates l->data, "bar" compares l->data against a key).
 * Shows the RAR dependence stream's locality (Section 2) and how much
 * of it RAR-based cloaking converts into correct speculative values.
 *
 *   ./examples/list_sharing
 */

#include <cstdio>

#include "analysis/locality.hh"
#include "common/rng.hh"
#include "core/cloaking.hh"
#include "vm/micro_vm.hh"
#include "workload/kernels.hh"

int
main()
{
    using namespace rarpred;
    using namespace rarpred::kernels;

    // Build the Figure 3(c) program with the kernel library.
    ProgramBuilder b("list_sharing");
    Rng rng(1234);
    const uint64_t head = allocList(b, rng, 24, true);
    const uint64_t sum = allocGlobal(b);
    const uint64_t count = allocGlobal(b);

    emitMain(b, {"walk"}, 400);
    emitListWalk(b, "walk", {head, sum, count, 17});
    Program program = b.build();

    // Measure RAR dependence locality (Section 2 metric) and cloaking
    // accuracy side by side.
    RarLocalityAnalyzer locality(0, 4);
    CloakingConfig config;
    config.ddt.entries = 128;
    CloakingEngine engine(config);

    MicroVM vm(program);
    DynInst di;
    while (vm.next(di)) {
        locality.onInst(di);
        engine.onInst(di);
    }

    std::printf("Figure 3 example: 24-node list, foo+bar readers, 400 "
                "traversals\n\n");
    std::printf("dynamic loads:        %llu\n",
                (unsigned long long)locality.totalLoads());
    std::printf("loads with RAR dep:   %llu (%.1f%%)\n",
                (unsigned long long)locality.sinkExecutions(),
                100.0 * locality.sinkExecutions() /
                    (double)locality.totalLoads());
    auto loc = locality.locality();
    std::printf("dependence locality:  n=1 %.1f%%  n=2 %.1f%%  "
                "n=3 %.1f%%  n=4 %.1f%%\n",
                100 * loc[0], 100 * loc[1], 100 * loc[2], 100 * loc[3]);

    const CloakingStats &s = engine.stats();
    std::printf("\ncloaking coverage:    %.1f%% of loads "
                "(RAW %.1f%% + RAR %.1f%%)\n",
                100 * s.coverage(),
                100.0 * s.coveredRaw / (double)s.loads,
                100.0 * s.coveredRar / (double)s.loads);
    std::printf("misspeculation rate:  %.3f%%\n",
                100 * s.mispredictionRate());
    std::printf("\nThe bar site's l->data loads obtain their values by "
                "naming the foo site's\nloads through the synonym file "
                "-- no address calculation needed.\n");
    return 0;
}
