/**
 * @file
 * Timing-model tests: the out-of-order core is fed hand-built
 * committed traces and must show the latencies, bandwidths and
 * speculation behaviours of the Section 5.1/5.6 machine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/ooo_cpu.hh"

namespace rarpred {
namespace {

/** Builds DynInst streams for direct CPU feeding.
 *
 * PCs advance within a 1 KB loop so the I-cache behaves as it would
 * for real looping code; tests that need fixed PCs pass overrides. */
class TraceBuilder
{
  public:
    DynInst &
    alu(Opcode op, RegId dst, RegId s1, RegId s2 = reg::kNone)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc_;
        pc_ = (pc_ + 4) & 0x3ff;
        di.nextPc = pc_;
        di.op = op;
        di.dst = dst;
        di.src1 = s1;
        di.src2 = s2;
        trace_.push_back(di);
        return trace_.back();
    }

    DynInst &
    load(RegId dst, RegId base, uint64_t addr, uint64_t value = 0,
         uint64_t pc_override = ~0ull)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc_override == ~0ull ? pc_ : pc_override;
        if (pc_override == ~0ull)
            pc_ = (pc_ + 4) & 0x3ff;
        di.nextPc = pc_;
        di.op = Opcode::Lw;
        di.dst = dst;
        di.src1 = base;
        di.eaddr = addr;
        di.value = value;
        trace_.push_back(di);
        return trace_.back();
    }

    DynInst &
    store(RegId base, RegId data, uint64_t addr, uint64_t value = 0)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc_;
        pc_ = (pc_ + 4) & 0x3ff;
        di.nextPc = pc_;
        di.op = Opcode::Sw;
        di.src1 = base;
        di.src2 = data;
        di.eaddr = addr;
        di.value = value;
        trace_.push_back(di);
        return trace_.back();
    }

    DynInst &
    branch(bool taken, uint64_t target, uint64_t pc_override = ~0ull)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc_override == ~0ull ? pc_ : pc_override;
        if (pc_override == ~0ull)
            pc_ = (pc_ + 4) & 0x3ff;
        di.op = Opcode::Beq;
        di.src1 = reg::kZero;
        di.src2 = reg::kZero;
        di.taken = taken;
        di.nextPc = taken ? target : di.pc + 4;
        trace_.push_back(di);
        return trace_.back();
    }

    uint64_t
    run(OooCpu &cpu) const
    {
        for (const auto &di : trace_)
            cpu.onInst(di);
        return cpu.stats().cycles;
    }

    std::vector<DynInst> trace_;

  private:
    uint64_t seq_ = 0;
    uint64_t pc_ = 0;
};

CpuConfig
baseConfig()
{
    return CpuConfig{};
}

/**
 * Steady-state cycles per instruction of a repeating trace: runs a
 * warmup prefix (cold caches, predictor training), then measures the
 * marginal cost of the remaining instructions.
 */
double
steadyCpi(OooCpu &cpu, const TraceBuilder &tb, size_t warmup)
{
    uint64_t warm_cycles = 0;
    size_t i = 0;
    for (const auto &di : tb.trace_) {
        cpu.onInst(di);
        if (++i == warmup)
            warm_cycles = cpu.stats().cycles;
    }
    return (double)(cpu.stats().cycles - warm_cycles) /
           (double)(tb.trace_.size() - warmup);
}

TEST(OooCpu, IndependentAluStreamNearFullWidth)
{
    TraceBuilder tb;
    for (int i = 0; i < 16000; ++i)
        tb.alu(Opcode::Add, (RegId)(1 + i % 8), reg::kZero);
    OooCpu cpu(baseConfig(), {});
    double cpi = steadyCpi(cpu, tb, 8000);
    EXPECT_LT(cpi, 1.0 / 6.0); // near the 8-wide limit
}

// Serial chains run at operand-read (1) + execute latency per op.
TEST(OooCpu, SerialAddChainOnePerCycle)
{
    TraceBuilder tb;
    for (int i = 0; i < 4000; ++i)
        tb.alu(Opcode::Add, 1, 1);
    OooCpu cpu(baseConfig(), {});
    EXPECT_NEAR(steadyCpi(cpu, tb, 2000), 2.0, 0.1);
}

TEST(OooCpu, SerialMulChainFourPerOp)
{
    TraceBuilder tb;
    for (int i = 0; i < 2000; ++i)
        tb.alu(Opcode::Mul, 1, 1);
    OooCpu cpu(baseConfig(), {});
    EXPECT_NEAR(steadyCpi(cpu, tb, 1000), 5.0, 0.2);
}

TEST(OooCpu, FpDivDoubleChainLatency)
{
    TraceBuilder tb;
    RegId f = reg::fpReg(1);
    for (int i = 0; i < 1000; ++i)
        tb.alu(Opcode::FdivD, f, f);
    OooCpu cpu(baseConfig(), {});
    EXPECT_NEAR(steadyCpi(cpu, tb, 500), 16.0, 0.3);
}

TEST(OooCpu, SerialLoadChainIncludesMemoryLatency)
{
    // lw r1 <- [r1]: address generation + LSQ + 2-cycle L1 hit.
    TraceBuilder tb;
    for (int i = 0; i < 2000; ++i)
        tb.load(1, 1, 0x1000, 0, 0); // same PC, same address
    OooCpu cpu(baseConfig(), {});
    uint64_t cycles = tb.run(cpu);
    double per_load = (double)cycles / 2000.0;
    EXPECT_GT(per_load, 3.5); // ~1 (addr) + 1 (lsq) + 2 (L1)
    EXPECT_LT(per_load, 6.0);
}

TEST(OooCpu, ParallelLoadsHideLatency)
{
    TraceBuilder tb;
    for (int i = 0; i < 4000; ++i)
        tb.load((RegId)(1 + i % 8), reg::kZero,
                0x1000 + (uint64_t)(i % 4) * 8);
    OooCpu cpu(baseConfig(), {});
    uint64_t cycles = tb.run(cpu);
    // 4 LSQ ports bound throughput, latency overlapped.
    EXPECT_LT((double)cycles / 4000.0, 0.5);
}

TEST(OooCpu, StoreForwardingBeatsCacheMiss)
{
    // Each load reads a freshly stored cold address: forwarding from
    // the store queue avoids the 62-cycle cold miss.
    TraceBuilder tb;
    for (int i = 0; i < 500; ++i) {
        uint64_t addr = 0x100000 + (uint64_t)i * 4096; // all cold
        tb.store(reg::kZero, 2, addr);
        tb.load(1, reg::kZero, addr);
        tb.alu(Opcode::Add, 3, 1); // consumer
    }
    OooCpu cpu(baseConfig(), {});
    uint64_t cycles = tb.run(cpu);
    EXPECT_LT((double)cycles / 500.0, 12.0);
}

TEST(OooCpu, MemOrderViolationDetectedUnderNaiveSpec)
{
    // A store whose address depends on a 12-cycle divide chain is
    // followed immediately by a load to the same address: naive
    // speculation lets the load go first and repairs it later.
    TraceBuilder tb;
    for (int i = 0; i < 200; ++i) {
        tb.alu(Opcode::Div, 4, 4);      // slow address computation
        tb.store(4, 2, 0x2000);         // address late
        tb.load(1, reg::kZero, 0x2000); // conflicts
    }
    OooCpu cpu(baseConfig(), {});
    tb.run(cpu);
    EXPECT_GT(cpu.stats().memOrderViolations, 100u);
}

TEST(OooCpu, ConservativeModeAvoidsViolations)
{
    TraceBuilder tb;
    for (int i = 0; i < 200; ++i) {
        tb.alu(Opcode::Div, 4, 4);
        tb.store(4, 2, 0x2000);
        tb.load(1, reg::kZero, 0x2000);
    }
    CpuConfig config = baseConfig();
    config.memDep = MemDepPolicy::Conservative;
    OooCpu cpu(config, {});
    tb.run(cpu);
    EXPECT_EQ(cpu.stats().memOrderViolations, 0u);
}

TEST(OooCpu, ConservativeModeIsSlowerOnIndependentLoads)
{
    // Loads to distinct addresses behind slow-address stores: naive
    // speculation sails past, the conservative machine waits.
    auto build = [](TraceBuilder &tb) {
        for (int i = 0; i < 300; ++i) {
            tb.alu(Opcode::Div, 4, 4);
            tb.store(4, 2, 0x2000);
            tb.load(1, reg::kZero, 0x3000); // independent address
            tb.alu(Opcode::Add, 5, 1);
        }
    };
    TraceBuilder a, b;
    build(a);
    build(b);
    OooCpu naive(baseConfig(), {});
    CpuConfig cons_config = baseConfig();
    cons_config.memDep = MemDepPolicy::Conservative;
    OooCpu conservative(cons_config, {});
    uint64_t naive_cycles = a.run(naive);
    uint64_t cons_cycles = b.run(conservative);
    EXPECT_LT(naive_cycles, cons_cycles);
}

TEST(OooCpu, BranchMispredictsCostCycles)
{
    // A pseudo-random direction pattern defeats the predictor; a
    // monotone pattern does not.
    auto build = [](TraceBuilder &tb, bool random) {
        uint64_t x = 12345;
        for (int i = 0; i < 3000; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            bool taken = random ? ((x >> 60) & 1) != 0 : true;
            tb.branch(taken, 0, 0x500);
            tb.alu(Opcode::Add, 1, reg::kZero);
        }
    };
    TraceBuilder hard, easy;
    build(hard, true);
    build(easy, false);
    OooCpu cpu_hard(baseConfig(), {});
    OooCpu cpu_easy(baseConfig(), {});
    uint64_t hard_cycles = hard.run(cpu_hard);
    uint64_t easy_cycles = easy.run(cpu_easy);
    EXPECT_GT(cpu_hard.stats().branchMispredicts,
              cpu_easy.stats().branchMispredicts + 500);
    EXPECT_GT(hard_cycles, easy_cycles * 2);
}

TEST(OooCpu, WindowLimitsRunahead)
{
    // One cold-miss load, then a long independent stream: the window
    // (128) bounds how far the machine runs ahead of the miss.
    CpuConfig small = baseConfig();
    small.windowSize = 32;
    CpuConfig big = baseConfig();
    big.windowSize = 512;
    auto build = [](TraceBuilder &tb) {
        for (int rep = 0; rep < 50; ++rep) {
            tb.load(1, reg::kZero, 0x100000 + (uint64_t)rep * 8192);
            for (int i = 0; i < 200; ++i)
                tb.alu(Opcode::Add, (RegId)(2 + i % 6), reg::kZero);
        }
    };
    TraceBuilder a, b;
    build(a);
    build(b);
    OooCpu cpu_small(small, {});
    OooCpu cpu_big(big, {});
    uint64_t small_cycles = a.run(cpu_small);
    uint64_t big_cycles = b.run(cpu_big);
    EXPECT_GT(small_cycles, big_cycles);
}

// ------------------------------------------------- value speculation

CloakTimingConfig
cloakConfig(RecoveryModel recovery = RecoveryModel::Selective)
{
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.recovery = recovery;
    return cloak;
}

/** Serial self-RAR load chain: lw r1 <- [r1] at a fixed address. */
TraceBuilder
selfRarChain(int n, uint64_t value = 42)
{
    TraceBuilder tb;
    for (int i = 0; i < n; ++i) {
        tb.load(1, 1, 0x1000, value, 0);
        tb.alu(Opcode::Add, 2, 1);
    }
    return tb;
}

TEST(OooCpu, CloakingAcceleratesSelfRarChain)
{
    TraceBuilder a = selfRarChain(20000);
    TraceBuilder b = selfRarChain(20000);
    OooCpu base(baseConfig(), {});
    OooCpu mech(baseConfig(), cloakConfig());
    uint64_t base_cycles = a.run(base);
    uint64_t mech_cycles = b.run(mech);
    EXPECT_GT(mech.stats().valueSpecUsed, 15000u);
    EXPECT_EQ(mech.stats().valueSpecWrong, 0u);
    EXPECT_LT((double)mech_cycles, 0.7 * (double)base_cycles);
}

/** Chain whose loaded value never matches what the producing store
 *  deposited: speculation is always wrong once armed (with the 1-bit
 *  predictor it keeps firing). */
TraceBuilder
alternatingValueChain(int n)
{
    TraceBuilder tb;
    for (int i = 0; i < n; ++i) {
        tb.load(1, 1, 0x1000, (uint64_t)i, 0);
        tb.alu(Opcode::Add, 2, 1);
        // The store writes a value unrelated to what the next load
        // reads (hand-built trace), so the cloaked value never
        // verifies.
        tb.store(reg::kZero, 2, 0x1000, 0xdeadbeef);
    }
    return tb;
}

TEST(OooCpu, SquashRecoveryWorseThanSelective)
{
    CloakTimingConfig sel = cloakConfig(RecoveryModel::Selective);
    CloakTimingConfig sq = cloakConfig(RecoveryModel::Squash);
    // Non-adaptive confidence so mispredictions keep happening.
    sel.engine.dpnt.confidence = ConfidenceKind::OneBitNonAdaptive;
    sq.engine.dpnt.confidence = ConfidenceKind::OneBitNonAdaptive;
    TraceBuilder a = alternatingValueChain(5000);
    TraceBuilder b = alternatingValueChain(5000);
    OooCpu cpu_sel(baseConfig(), sel);
    OooCpu cpu_sq(baseConfig(), sq);
    uint64_t sel_cycles = a.run(cpu_sel);
    uint64_t sq_cycles = b.run(cpu_sq);
    EXPECT_GT(cpu_sq.stats().squashes, 1000u);
    EXPECT_GT(sq_cycles, sel_cycles);
}

TEST(OooCpu, OracleNeverCountsWrongSpeculation)
{
    CloakTimingConfig oracle = cloakConfig(RecoveryModel::Oracle);
    oracle.engine.dpnt.confidence = ConfidenceKind::OneBitNonAdaptive;
    TraceBuilder tb = alternatingValueChain(3000);
    OooCpu cpu(baseConfig(), oracle);
    tb.run(cpu);
    EXPECT_EQ(cpu.stats().valueSpecWrong, 0u);
    EXPECT_EQ(cpu.stats().squashes, 0u);
}

TEST(OooCpu, AdaptiveConfidenceSuppressesHopelessChain)
{
    TraceBuilder tb = alternatingValueChain(5000);
    OooCpu cpu(baseConfig(), cloakConfig());
    tb.run(cpu);
    // The 2-bit automaton locks the pair out after the first miss.
    EXPECT_LT(cpu.stats().valueSpecWrong, 50u);
}

TEST(OooCpu, BypassingBeatsCloakingAlone)
{
    // Section 3.2: without bypassing every covered load pays one
    // extra propagation cycle on the speculative path.
    CloakTimingConfig with = cloakConfig();
    CloakTimingConfig without = cloakConfig();
    without.bypassing = false;
    TraceBuilder a = selfRarChain(20000);
    TraceBuilder b = selfRarChain(20000);
    OooCpu cpu_with(baseConfig(), with);
    OooCpu cpu_without(baseConfig(), without);
    uint64_t with_cycles = a.run(cpu_with);
    uint64_t without_cycles = b.run(cpu_without);
    EXPECT_LT(with_cycles, without_cycles);
}

TEST(OooCpu, StatsBookkeeping)
{
    TraceBuilder tb;
    tb.load(1, reg::kZero, 0x1000);
    tb.store(reg::kZero, 1, 0x2000);
    tb.alu(Opcode::Add, 2, 1);
    OooCpu cpu(baseConfig(), {});
    tb.run(cpu);
    EXPECT_EQ(cpu.stats().instructions, 3u);
    EXPECT_EQ(cpu.stats().loads, 1u);
    EXPECT_EQ(cpu.stats().stores, 1u);
    EXPECT_GT(cpu.stats().cycles, 0u);
}

} // namespace
} // namespace rarpred
