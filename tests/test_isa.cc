/**
 * @file
 * Unit tests for the MicroISA: opcode classification, the paper's
 * functional-unit latencies, and the ProgramBuilder assembler.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program_builder.hh"

namespace rarpred {
namespace {

TEST(Opcode, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Opcode::Lw));
    EXPECT_TRUE(isLoad(Opcode::Lf));
    EXPECT_FALSE(isLoad(Opcode::Sw));
    EXPECT_TRUE(isStore(Opcode::Sw));
    EXPECT_TRUE(isStore(Opcode::Sf));
    EXPECT_FALSE(isStore(Opcode::Add));
}

TEST(Opcode, ControlClassification)
{
    for (Opcode op : {Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                      Opcode::Jump, Opcode::Call, Opcode::Ret})
        EXPECT_TRUE(isControl(op));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_FALSE(isControl(Opcode::Lw));
}

TEST(Opcode, CondBranchSubset)
{
    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_TRUE(isCondBranch(Opcode::Bge));
    EXPECT_FALSE(isCondBranch(Opcode::Jump));
    EXPECT_FALSE(isCondBranch(Opcode::Call));
    EXPECT_FALSE(isCondBranch(Opcode::Ret));
}

// Latencies from Section 5.1 of the paper.
TEST(Opcode, PaperLatencies)
{
    EXPECT_EQ(latencyOf(Opcode::Add), 1u);
    EXPECT_EQ(latencyOf(Opcode::Mul), 4u);
    EXPECT_EQ(latencyOf(Opcode::Div), 12u);
    EXPECT_EQ(latencyOf(Opcode::FaddS), 2u);
    EXPECT_EQ(latencyOf(Opcode::FaddD), 2u);
    EXPECT_EQ(latencyOf(Opcode::FcmpD), 2u);
    EXPECT_EQ(latencyOf(Opcode::FmulS), 4u);
    EXPECT_EQ(latencyOf(Opcode::FmulD), 5u);
    EXPECT_EQ(latencyOf(Opcode::FdivS), 12u);
    EXPECT_EQ(latencyOf(Opcode::FdivD), 15u);
}

TEST(Opcode, ClassOfCoversFpBuckets)
{
    EXPECT_EQ(classOf(Opcode::FmulS), InstClass::FpMulS);
    EXPECT_EQ(classOf(Opcode::FmulD), InstClass::FpMulD);
    EXPECT_EQ(classOf(Opcode::FdivS), InstClass::FpDivS);
    EXPECT_EQ(classOf(Opcode::FdivD), InstClass::FpDivD);
    EXPECT_EQ(classOf(Opcode::Fcvt), InstClass::FpAdd);
    EXPECT_EQ(classOf(Opcode::Lw), InstClass::Load);
    EXPECT_EQ(classOf(Opcode::Sf), InstClass::Store);
    EXPECT_EQ(classOf(Opcode::Ret), InstClass::Branch);
}

TEST(Reg, Classification)
{
    EXPECT_FALSE(reg::isFp(0));
    EXPECT_FALSE(reg::isFp(31));
    EXPECT_TRUE(reg::isFp(32));
    EXPECT_TRUE(reg::isFp(63));
    EXPECT_FALSE(reg::isFp(reg::kNone));
    EXPECT_EQ(reg::fpReg(3), 35);
    EXPECT_EQ(reg::intReg(3), 3);
}

TEST(Instruction, PcIndexRoundTrip)
{
    EXPECT_EQ(pcOfIndex(0), 0u);
    EXPECT_EQ(pcOfIndex(3), 12u);
    EXPECT_EQ(indexOfPc(12), 3u);
}

TEST(ProgramBuilder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("t");
    b.jump("fwd");       // index 0, forward reference
    b.label("back");     // index 1
    b.nop();             // index 1
    b.label("fwd");      // index 2
    b.beq(0, 0, "back"); // backward reference
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.numInsts(), 4u);
    EXPECT_EQ(p.code()[0].target, 2u);
    EXPECT_EQ(p.code()[2].target, 1u);
}

TEST(ProgramBuilder, EmitsExpectedEncodings)
{
    ProgramBuilder b("t");
    b.addi(5, 6, -8);
    b.lw(7, 8, 16);
    b.sw(9, 24, 10);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code()[0].op, Opcode::Addi);
    EXPECT_EQ(p.code()[0].dst, 5);
    EXPECT_EQ(p.code()[0].src1, 6);
    EXPECT_EQ(p.code()[0].imm, -8);
    EXPECT_EQ(p.code()[1].op, Opcode::Lw);
    EXPECT_EQ(p.code()[1].imm, 16);
    EXPECT_EQ(p.code()[2].op, Opcode::Sw);
    EXPECT_EQ(p.code()[2].src1, 9);
    EXPECT_EQ(p.code()[2].src2, 10);
    EXPECT_EQ(p.code()[2].imm, 24);
}

TEST(ProgramBuilder, PushPopExpandToStackOps)
{
    ProgramBuilder b("t");
    b.push(5);
    b.pop(5);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.numInsts(), 5u);
    EXPECT_EQ(p.code()[0].op, Opcode::Addi); // sp -= 8
    EXPECT_EQ(p.code()[0].imm, -8);
    EXPECT_EQ(p.code()[1].op, Opcode::Sw);
    EXPECT_EQ(p.code()[2].op, Opcode::Lw);
    EXPECT_EQ(p.code()[3].op, Opcode::Addi); // sp += 8
    EXPECT_EQ(p.code()[3].imm, 8);
}

TEST(ProgramBuilder, DataAllocationIsConsecutive)
{
    ProgramBuilder b("t");
    uint64_t a = b.allocWords(4);
    uint64_t c = b.allocWords(2);
    EXPECT_EQ(c, a + 32);
    b.initWord(a, 7);
    b.initWordF(c, 1.5);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.initialData().size(), 2u);
    EXPECT_EQ(p.initialData()[0].addr, a);
    EXPECT_EQ(p.initialData()[0].value, 7u);
}

TEST(ProgramBuilder, CallWritesRaAndTargets)
{
    ProgramBuilder b("t");
    b.call("f"); // 0
    b.halt();    // 1
    b.label("f");
    b.ret(); // 2
    Program p = b.build();
    EXPECT_EQ(p.code()[0].op, Opcode::Call);
    EXPECT_EQ(p.code()[0].dst, reg::kRa);
    EXPECT_EQ(p.code()[0].target, 2u);
    EXPECT_EQ(p.code()[2].op, Opcode::Ret);
    EXPECT_EQ(p.code()[2].src1, reg::kRa);
}

TEST(ProgramBuilder, ListingMentionsEveryInstruction)
{
    ProgramBuilder b("t");
    b.li(1, 5);
    b.add(2, 1, 1);
    b.halt();
    Program p = b.build();
    std::string listing = p.listing();
    EXPECT_NE(listing.find("li r1, 5"), std::string::npos);
    EXPECT_NE(listing.find("add r2, r1, r1"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Disassemble, MemoryAndBranchFormats)
{
    Instruction lw;
    lw.op = Opcode::Lw;
    lw.dst = 5;
    lw.src1 = 6;
    lw.imm = 16;
    EXPECT_EQ(disassemble(lw), "lw r5, 16(r6)");

    Instruction beq;
    beq.op = Opcode::Beq;
    beq.src1 = 1;
    beq.src2 = 2;
    beq.target = 7;
    EXPECT_EQ(disassemble(beq), "beq r1, r2, @7");

    Instruction lf;
    lf.op = Opcode::Lf;
    lf.dst = reg::fpReg(2);
    lf.src1 = 4;
    lf.imm = -8;
    EXPECT_EQ(disassemble(lf), "lf f2, -8(r4)");
}

TEST(Program, MemBytesPropagated)
{
    ProgramBuilder b("t", 1 << 20);
    EXPECT_EQ(b.stackTop(), 1u << 20);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.memBytes(), 1u << 20);
    EXPECT_EQ(p.name(), "t");
}

} // namespace
} // namespace rarpred
