/**
 * @file
 * Property/fuzz battery for the open-addressing tables of
 * common/flat_table.hh, the probe path under every hint structure and
 * bandwidth limiter on the simulate hot loop.
 *
 * FlatMap is checked operation-for-operation against a
 * std::unordered_map model; FlatLruTable against the list+map
 * FullyAssocLruTable it replaces, including eviction identity, MRU
 * iteration order, and byte-identical saveState images (the snapshot
 * layer depends on the wire formats matching). Directed cases cover
 * the probe-path corners: index wraparound past the top slot,
 * tombstone reuse after erase, and the max-load-factor resize.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_table.hh"
#include "common/lru_table.hh"
#include "common/rng.hh"
#include "common/statesave.hh"

namespace rarpred {
namespace {

// ------------------------------------------------- FlatMap model

/** Drive a FlatMap and a std::unordered_map with the same ops. */
class FlatMapFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FlatMapFuzz, MatchesUnorderedMapModel)
{
    Rng rng(GetParam());
    FlatMap<uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> model;

    // A small key domain forces collisions, erase-reinsert cycles
    // and tombstone traffic; a wide one exercises growth.
    const uint64_t domain = rng.chance(0.5) ? 64 : 100'000;

    for (int step = 0; step < 30'000; ++step) {
        const uint64_t key = rng.below(domain) * 0x9e3779b97f4a7c15ull;
        switch (rng.below(6)) {
        case 0:
        case 1: { // findOrInsert
            const uint64_t init = rng.below(1000);
            uint64_t &got = map.findOrInsert(key, init);
            auto [it, fresh] = model.try_emplace(key, init);
            ASSERT_EQ(got, it->second) << "step " << step;
            if (rng.chance(0.3)) { // mutate through the reference
                got += 7;
                it->second += 7;
            }
            (void)fresh;
            break;
        }
        case 2: { // insert (overwrite)
            const uint64_t value = rng.below(1000);
            map.insert(key, value);
            model[key] = value;
            break;
        }
        case 3: { // find
            uint64_t *got = map.find(key);
            auto it = model.find(key);
            ASSERT_EQ(got != nullptr, it != model.end());
            if (got != nullptr)
                ASSERT_EQ(*got, it->second);
            break;
        }
        case 4: { // erase
            ASSERT_EQ(map.erase(key), model.erase(key) != 0);
            break;
        }
        case 5: { // eraseIf, occasionally
            if (!rng.chance(0.02))
                break;
            const uint64_t cut = rng.below(1000);
            const size_t removed = map.eraseIf(
                [cut](uint64_t, const uint64_t &v) { return v < cut; });
            size_t model_removed = 0;
            for (auto it = model.begin(); it != model.end();) {
                if (it->second < cut) {
                    it = model.erase(it);
                    ++model_removed;
                } else {
                    ++it;
                }
            }
            ASSERT_EQ(removed, model_removed);
            break;
        }
        }
        ASSERT_EQ(map.size(), model.size()) << "step " << step;
    }

    // Full-content sweep: forEach must visit exactly the model.
    std::unordered_map<uint64_t, uint64_t> seen;
    map.forEach([&](uint64_t k, const uint64_t &v) { seen[k] = v; });
    EXPECT_EQ(seen.size(), model.size());
    for (const auto &[k, v] : model) {
        auto it = seen.find(k);
        ASSERT_NE(it, seen.end());
        EXPECT_EQ(it->second, v);
    }

    // The resize policy keeps the probe path fast: live + tombstone
    // fill stays under 7/8 at all times.
    const ProbeStats s = map.probeStats();
    EXPECT_EQ(s.size, model.size());
    EXPECT_LT(s.loadFactor(), 7.0 / 8.0);
    EXPECT_GT(s.lookups, 0u);
    EXPECT_GE(s.probes, s.lookups);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------- directed corners

/** Find @p n keys whose initial probe slot (mod 16) equals @p slot. */
std::vector<uint64_t>
keysHashingTo(size_t slot, size_t n)
{
    std::vector<uint64_t> keys;
    for (uint64_t k = 1; keys.size() < n; ++k)
        if ((flatHashU64(k) & 15) == slot)
            keys.push_back(k);
    return keys;
}

TEST(FlatMapCorners, ProbeWrapsAroundTheTopSlot)
{
    // Several keys all landing on the last slot of a 16-slot table:
    // the linear probe must wrap to slot 0 and keep going.
    FlatMap<uint64_t> map(16);
    const auto keys = keysHashingTo(15, 5);
    for (size_t i = 0; i < keys.size(); ++i)
        map.insert(keys[i], i + 100);
    ASSERT_EQ(map.slotCount(), 16u) << "grew prematurely";
    for (size_t i = 0; i < keys.size(); ++i) {
        uint64_t *v = map.find(keys[i]);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i + 100);
    }
    // Longest chain walked 5 colliding slots.
    EXPECT_GE(map.probeStats().maxProbe, 5u);

    // Erase the middle of the wrapped chain; the entries past it must
    // stay reachable (the tombstone keeps the probe going).
    ASSERT_TRUE(map.erase(keys[1]));
    for (size_t i = 2; i < keys.size(); ++i)
        ASSERT_NE(map.find(keys[i]), nullptr);
}

TEST(FlatMapCorners, TombstonesAreReusedByReinsertion)
{
    FlatMap<uint64_t> map(16);
    const auto keys = keysHashingTo(3, 4);
    for (uint64_t k : keys)
        map.insert(k, k);
    // Kill the head of the chain, then reinsert the tail key: the
    // probe must park it in the first tombstone, not extend the
    // chain — a subsequent find hits it in a single step.
    ASSERT_TRUE(map.erase(keys[0]));
    ASSERT_TRUE(map.erase(keys[3]));
    map.insert(keys[3], 99);
    const uint64_t probes_before = map.probeStats().probes;
    ASSERT_NE(map.find(keys[3]), nullptr);
    EXPECT_EQ(map.probeStats().probes - probes_before, 1u);
    EXPECT_EQ(*map.find(keys[3]), 99u);
    // And the chain is still intact for the untouched keys.
    for (size_t i = 1; i < 3; ++i)
        ASSERT_NE(map.find(keys[i]), nullptr);
}

TEST(FlatMapCorners, GrowsAtMaxLoadFactorAndKeepsContent)
{
    FlatMap<uint64_t> map(16);
    for (uint64_t k = 0; k < 10'000; ++k)
        map.insert(k * 0x9e3779b97f4a7c15ull, k);
    const ProbeStats s = map.probeStats();
    EXPECT_GT(s.resizes, 0u);
    EXPECT_LT(s.loadFactor(), 7.0 / 8.0);
    EXPECT_GE(s.slots, 10'000u);
    for (uint64_t k = 0; k < 10'000; ++k) {
        uint64_t *v = map.find(k * 0x9e3779b97f4a7c15ull);
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(*v, k);
    }
}

TEST(FlatMapCorners, EraseHeavyChurnStaysBounded)
{
    // Insert/erase cycles with disjoint keys each round: tombstone
    // purges must keep the table at its steady-state capacity instead
    // of growing without bound.
    FlatMap<uint64_t> map;
    uint64_t next_key = 0;
    size_t max_slots = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<uint64_t> keys;
        for (int i = 0; i < 100; ++i)
            keys.push_back(next_key++);
        for (uint64_t k : keys)
            map.insert(k, k);
        for (uint64_t k : keys)
            ASSERT_TRUE(map.erase(k));
        max_slots = std::max(max_slots, map.slotCount());
    }
    EXPECT_EQ(map.size(), 0u);
    // 100 live entries need 256 slots at 7/8 fill; anything well
    // beyond that means tombstones leaked into growth decisions.
    EXPECT_LE(max_slots, 512u);
    EXPECT_GT(map.probeStats().resizes, 0u);
}

// --------------------------------------------- FlatLruTable model

using ModelLru = FullyAssocLruTable<uint64_t, uint64_t>;

/** MRU-to-LRU (key, value) listing of either table flavour. */
template <typename Table>
std::vector<std::pair<uint64_t, uint64_t>>
listOf(const Table &t)
{
    std::vector<std::pair<uint64_t, uint64_t>> out;
    t.forEach([&](uint64_t k, const uint64_t &v) {
        out.emplace_back(k, v);
    });
    return out;
}

template <typename Table>
std::vector<uint8_t>
imageOf(const Table &t)
{
    StateWriter w;
    t.saveState(w,
                [](StateWriter &sw, const uint64_t &v) { sw.u64(v); });
    return w.buffer();
}

class FlatLruFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>>
{
};

TEST_P(FlatLruFuzz, MatchesListMapModel)
{
    const auto [seed, capacity] = GetParam();
    Rng rng(seed);
    FlatLruTable<uint64_t> table(capacity);
    ModelLru model(capacity);

    const uint64_t domain =
        capacity == 0 ? 500 : (uint64_t)capacity * 3;

    for (int step = 0; step < 20'000; ++step) {
        const uint64_t key = rng.below(domain);
        switch (rng.below(5)) {
        case 0: { // insert: evictions must be identical
            const uint64_t value = rng.below(1000);
            auto got = table.insert(key, value);
            auto want = model.insert(key, value);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "step " << step;
            if (got.has_value()) {
                ASSERT_EQ(got->key, want->key);
                ASSERT_EQ(got->value, want->value);
            }
            break;
        }
        case 1: { // touch: same hit/miss, same value, same promotion
            uint64_t *got = table.touch(key);
            uint64_t *want = model.touch(key);
            ASSERT_EQ(got != nullptr, want != nullptr);
            if (got != nullptr)
                ASSERT_EQ(*got, *want);
            break;
        }
        case 2: { // find: no recency change
            uint64_t *got = table.find(key);
            uint64_t *want = model.find(key);
            ASSERT_EQ(got != nullptr, want != nullptr);
            if (got != nullptr)
                ASSERT_EQ(*got, *want);
            break;
        }
        case 3: { // erase
            ASSERT_EQ(table.erase(key), model.erase(key));
            break;
        }
        case 4: { // clear, rarely
            if (rng.chance(0.005)) {
                table.clear();
                model.clear();
            }
            break;
        }
        }
        ASSERT_EQ(table.size(), model.size()) << "step " << step;
        if (step % 1000 == 0) {
            ASSERT_TRUE(table.auditIntegrity()) << "step " << step;
            ASSERT_EQ(listOf(table), listOf(model)) << "step " << step;
        }
    }

    // Recency order and the serialized image must both match bit for
    // bit — snapshots written by either implementation are
    // interchangeable.
    EXPECT_EQ(listOf(table), listOf(model));
    EXPECT_EQ(imageOf(table), imageOf(model));
    EXPECT_TRUE(table.auditIntegrity());

    const ProbeStats s = table.probeStats();
    EXPECT_EQ(s.size, table.size());
    EXPECT_LT(s.loadFactor(), 7.0 / 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCapacities, FlatLruFuzz,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(0, 1, 8, 128)));

TEST(FlatLruTable, CrossRestoreWithLegacyFormat)
{
    // Images written by the old list+map table restore into the flat
    // table (and back), reproducing the exact recency order.
    ModelLru legacy(8);
    for (uint64_t k = 0; k < 12; ++k)
        legacy.insert(k, k * 10);
    (void)legacy.touch(7); // shuffle recency

    FlatLruTable<uint64_t> flat(8);
    const std::vector<uint8_t> legacy_img = imageOf(legacy);
    StateReader r(legacy_img);
    ASSERT_TRUE(flat.restoreState(r,
                                  [](StateReader &sr, uint64_t *v) {
                                      return sr.u64(v);
                                  })
                    .ok());
    EXPECT_EQ(listOf(flat), listOf(legacy));
    EXPECT_EQ(imageOf(flat), imageOf(legacy));

    // And the reverse direction.
    ModelLru back(8);
    const std::vector<uint8_t> flat_img = imageOf(flat);
    StateReader r2(flat_img);
    ASSERT_TRUE(back.restoreState(r2,
                                  [](StateReader &sr, uint64_t *v) {
                                      return sr.u64(v);
                                  })
                    .ok());
    EXPECT_EQ(listOf(back), listOf(legacy));
}

TEST(FlatLruTable, RejectsOverCapacityImage)
{
    ModelLru big(0);
    for (uint64_t k = 0; k < 16; ++k)
        big.insert(k, k);
    FlatLruTable<uint64_t> small(4);
    const std::vector<uint8_t> big_img = imageOf(big);
    StateReader r(big_img);
    EXPECT_FALSE(small
                     .restoreState(r,
                                   [](StateReader &sr, uint64_t *v) {
                                       return sr.u64(v);
                                   })
                     .ok());
}

} // namespace
} // namespace rarpred
