/**
 * @file
 * Parameterized property tests over the 18 synthetic SPEC'95-like
 * workloads: every program must build, run to completion, stay within
 * plausible instruction-mix bands, and be bit-for-bit deterministic.
 */

#include <gtest/gtest.h>

#include "analysis/inst_mix.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

class WorkloadTest : public ::testing::TestWithParam<const char *>
{
  protected:
    const Workload &workload() const { return findWorkload(GetParam()); }
};

TEST_P(WorkloadTest, BuildsNonTrivialProgram)
{
    Program p = workload().build(1);
    EXPECT_GT(p.numInsts(), 50u);
    EXPECT_GT(p.memBytes(), 0u);
    EXPECT_FALSE(p.initialData().empty());
}

TEST_P(WorkloadTest, RunsToHaltWithinBudget)
{
    Program p = workload().build(1);
    MicroVM vm(p);
    uint64_t executed = vm.run(50'000'000ull);
    EXPECT_TRUE(vm.halted()) << "did not halt within 50M instructions";
    EXPECT_GT(executed, 100'000u) << "suspiciously short run";
    EXPECT_LT(executed, 50'000'000ull);
}

TEST_P(WorkloadTest, InstructionMixInPlausibleBand)
{
    Program p = workload().build(1);
    MicroVM vm(p);
    InstMixCounter mix;
    vm.run(mix, 50'000'000ull);
    EXPECT_GT(mix.loadFraction(), 0.05);
    EXPECT_LT(mix.loadFraction(), 0.55);
    EXPECT_GT(mix.storeFraction(), 0.005);
    EXPECT_LT(mix.storeFraction(), 0.35);
    // Loads outnumber stores in every SPEC'95 program.
    EXPECT_GT(mix.loads(), mix.stores());
}

TEST_P(WorkloadTest, FpSuiteUsesFpOps)
{
    Program p = workload().build(1);
    MicroVM vm(p);
    InstMixCounter mix;
    vm.run(mix, 50'000'000ull);
    if (workload().isFp)
        EXPECT_GT((double)mix.fpOps() / mix.total(), 0.05);
    else
        EXPECT_LT((double)mix.fpOps() / mix.total(), 0.05);
}

TEST_P(WorkloadTest, DeterministicAcrossBuilds)
{
    Program p1 = workload().build(1);
    Program p2 = workload().build(1);
    ASSERT_EQ(p1.numInsts(), p2.numInsts());
    MicroVM vm1(p1), vm2(p2);
    DynInst a, b;
    for (int i = 0; i < 200'000; ++i) {
        bool more1 = vm1.next(a);
        bool more2 = vm2.next(b);
        ASSERT_EQ(more1, more2);
        if (!more1)
            break;
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.eaddr, b.eaddr);
        ASSERT_EQ(a.value, b.value);
    }
}

TEST_P(WorkloadTest, ScaleMultipliesWork)
{
    Program p1 = workload().build(1);
    Program p2 = workload().build(2);
    MicroVM vm1(p1), vm2(p2);
    uint64_t n1 = vm1.run(100'000'000ull);
    uint64_t n2 = vm2.run(200'000'000ull);
    EXPECT_TRUE(vm1.halted());
    EXPECT_TRUE(vm2.halted());
    EXPECT_GT(n2, (uint64_t)((double)n1 * 1.7));
    EXPECT_LT(n2, (uint64_t)((double)n1 * 2.3));
}

TEST_P(WorkloadTest, MemoryAccessesStayAligned)
{
    Program p = workload().build(1);
    MicroVM vm(p);
    DynInst di;
    for (int i = 0; i < 500'000 && vm.next(di); ++i) {
        if (di.isMem()) {
            ASSERT_EQ(di.eaddr % 8, 0u);
            ASSERT_LT(di.eaddr, p.memBytes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::Values("go", "m88", "gcc", "com", "li", "ijp", "per",
                      "vor", "tom", "swm", "su2", "hyd", "mgd", "apl",
                      "trb", "aps", "fp*", "wav"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (!isalnum((unsigned char)c))
                c = '_';
        return name;
    });

TEST(WorkloadRegistry, HasEighteenPrograms)
{
    EXPECT_EQ(allWorkloads().size(), 18u);
    int fp = 0;
    for (const auto &w : allWorkloads())
        if (w.isFp)
            ++fp;
    EXPECT_EQ(fp, 10);
}

TEST(WorkloadRegistry, FindByAbbrev)
{
    EXPECT_EQ(findWorkload("go").fullName, "099.go");
    EXPECT_EQ(findWorkload("fp*").fullName, "145.fpppp");
}

} // namespace
} // namespace rarpred
