/**
 * @file
 * Tests for the extension mechanisms: combined memory renaming
 * (cloaking + value prediction) and profile-guided cloaking.
 */

#include <gtest/gtest.h>

#include "core/memory_renaming.hh"
#include "core/profile_cloaking.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

DynInst
load(uint64_t pc, uint64_t addr, uint64_t value, uint64_t seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.op = Opcode::Lw;
    di.dst = 1;
    di.src1 = 2;
    di.eaddr = addr;
    di.value = value;
    return di;
}

DynInst
store(uint64_t pc, uint64_t addr, uint64_t value, uint64_t seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.op = Opcode::Sw;
    di.src1 = 2;
    di.src2 = 3;
    di.eaddr = addr;
    di.value = value;
    return di;
}

// ------------------------------------------------- memory renaming

TEST(MemoryRenaming, UsesCloakingForRarPairs)
{
    CloakingConfig config;
    config.ddt.entries = 0;
    MemoryRenaming mr(config);
    uint64_t seq = 0;
    // RAR pair whose value changes every round: VP always wrong at
    // the sink, cloaking always right.
    for (uint64_t round = 0; round < 50; ++round) {
        mr.processInst(load(0x100, 0xA000, round, seq++));
        mr.processInst(load(0x200, 0xA000, round, seq++));
        mr.processInst(store(0x300, 0xA000, round + 1, seq++));
    }
    const auto &s = mr.stats();
    EXPECT_GT(s.usedCloak, 20u);
    EXPECT_GT(s.coverage(), 0.2);
    EXPECT_GT(s.rescuedByChoice, 10u);
}

TEST(MemoryRenaming, FallsBackToValuePrediction)
{
    CloakingConfig config;
    config.ddt.entries = 0;
    MemoryRenaming mr(config);
    uint64_t seq = 0;
    // A load with a constant value but no detectable dependence
    // (fresh address each time): only VP can cover it.
    for (uint64_t round = 0; round < 50; ++round)
        mr.processInst(load(0x100, 0xA000 + round * 8, 7, seq++));
    const auto &s = mr.stats();
    EXPECT_GT(s.usedVp, 40u);
    EXPECT_EQ(s.usedCloak, 0u);
    EXPECT_GT(s.coverage(), 0.9);
}

TEST(MemoryRenaming, CombinedBeatsEitherAloneOnWorkload)
{
    const Workload &w = findWorkload("gcc");

    CloakingConfig config;
    config.ddt.entries = 128;

    CloakingEngine cloak_only(config);
    LastValuePredictor vp_only({16384, 0});
    MemoryRenaming combined(config);

    Program p = w.build(1);
    MicroVM vm(p);
    DynInst di;
    uint64_t loads = 0, cloak_correct = 0, vp_correct = 0;
    while (vm.next(di)) {
        auto oc = cloak_only.processInst(di);
        bool vc = vp_only.processInst(di);
        combined.processInst(di);
        if (oc.wasLoad) {
            ++loads;
            cloak_correct += oc.used && oc.correct;
            vp_correct += vc;
        }
    }
    const double cloak_cov = (double)cloak_correct / loads;
    const double vp_cov = (double)vp_correct / loads;
    const double combined_cov = combined.stats().coverage();
    // The combination covers at least as much as the better
    // component (chooser warmup costs a sliver).
    EXPECT_GT(combined_cov, std::max(cloak_cov, vp_cov) * 0.95);
    EXPECT_GT(combined_cov, std::min(cloak_cov, vp_cov));
}

TEST(MemoryRenaming, StatsConservation)
{
    MemoryRenaming mr;
    uint64_t seq = 0;
    for (uint64_t i = 0; i < 100; ++i)
        mr.processInst(load(0x100 + (i % 7) * 4, 0xA000 + (i % 5) * 8,
                            i % 3, seq++));
    const auto &s = mr.stats();
    EXPECT_EQ(s.loads, 100u);
    EXPECT_EQ(s.correct + s.wrong, s.usedCloak + s.usedVp);
    EXPECT_LE(s.correct + s.wrong, s.loads);
}

// --------------------------------------------- profile-guided cloaking

TEST(ProfileCloaking, ProfilerFindsStablePairs)
{
    DependenceProfiler profiler(DdtConfig{});
    uint64_t seq = 0;
    for (uint64_t round = 0; round < 20; ++round) {
        profiler.onInst(load(0x100, 0xA000, 7, seq++));
        profiler.onInst(load(0x200, 0xA000, 7, seq++));
    }
    EXPECT_GT(profiler.pairsObserved(), 0u);
    auto profile = profiler.profile(8, 0.9);
    ASSERT_FALSE(profile.pairs.empty());
    bool found = false;
    for (const auto &pair : profile.pairs)
        if (pair.dep.sourcePc == 0x100 && pair.dep.sinkPc == 0x200)
            found = true;
    EXPECT_TRUE(found);
}

TEST(ProfileCloaking, UnstablePairsFilteredOut)
{
    DependenceProfiler profiler(DdtConfig{});
    uint64_t seq = 0;
    for (uint64_t round = 0; round < 20; ++round) {
        // The value changes between source and sink every round.
        profiler.onInst(load(0x100, 0xA000, round, seq++));
        profiler.onInst(store(0x300, 0xA000, round + 100, seq++));
        profiler.onInst(load(0x200, 0xA000, round + 100, seq++));
    }
    auto profile = profiler.profile(4, 0.9);
    for (const auto &pair : profile.pairs)
        EXPECT_FALSE(pair.dep.sourcePc == 0x100 &&
                     pair.dep.sinkPc == 0x200);
}

TEST(ProfileCloaking, StaticEngineCoversProfiledPairs)
{
    // Profile a training run, preload a static engine, and check it
    // covers the pair on a "production" run without any detection.
    DependenceProfiler profiler(DdtConfig{});
    uint64_t seq = 0;
    for (uint64_t round = 0; round < 20; ++round) {
        profiler.onInst(load(0x100, 0xA000, 7, seq++));
        profiler.onInst(load(0x200, 0xA000, 7, seq++));
    }
    CloakingEngine engine =
        makeProfileGuidedEngine(profiler.profile(8, 0.9));
    for (uint64_t round = 0; round < 10; ++round) {
        engine.processInst(load(0x100, 0xB000, 9, seq++));
        engine.processInst(load(0x200, 0xB000, 9, seq++));
    }
    EXPECT_GT(engine.stats().coveredRar, 5u);
    // No hardware detection happened.
    EXPECT_EQ(engine.stats().detectedRar, 0u);
    EXPECT_EQ(engine.stats().detectedRaw, 0u);
}

TEST(ProfileCloaking, ProfileGuidedTracksHardwareOnWorkload)
{
    // Train on one run of li, deploy statically on a second run; the
    // static mechanism should reach a solid fraction of the hardware
    // mechanism's coverage.
    const Workload &w = findWorkload("li");
    DependenceProfiler profiler(DdtConfig{});
    {
        Program p = w.build(1);
        MicroVM vm(p);
        vm.run(profiler, 50'000'000ull);
    }
    CloakingEngine static_engine =
        makeProfileGuidedEngine(profiler.profile(8, 0.85));
    CloakingConfig hw_config;
    hw_config.ddt.entries = 128;
    CloakingEngine hw_engine(hw_config);
    {
        Program p = w.build(1);
        MicroVM vm(p);
        DynInst di;
        while (vm.next(di)) {
            static_engine.onInst(di);
            hw_engine.onInst(di);
        }
    }
    EXPECT_GT(static_engine.stats().coverage(),
              0.5 * hw_engine.stats().coverage());
    // The stability filter keeps misspeculation low.
    EXPECT_LT(static_engine.stats().mispredictionRate(), 0.02);
}

} // namespace
} // namespace rarpred
