/**
 * @file
 * Chaos soak of the resident sweep service ("slow" label; CI runs it
 * nightly under ASan and TSan with 1, 4 and 8 clients).
 *
 * Concurrent clients hammer a subprocess rarpredd while the injected
 * fault matrix fires — dropped connections, torn requests, corrupted
 * store entries, and a SIGKILL'd daemon restarted over its own
 * store. Oracles:
 *
 *  - the daemon never dies except by the injected SIGKILL (a crash
 *    shows up as every subsequent request failing and the final
 *    STATUS probe not answering);
 *  - every reply that *does* complete renders exactly the reference
 *    table — faults may cost availability, never wrong answers;
 *  - after the whole matrix, a clean daemon over the battered store
 *    replays the reference byte-identically with store hits.
 *
 * Client count scales with RARPRED_SOAK_CLIENTS (default 4).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/driver_faults.hh"
#include "service_test_util.hh"

namespace rarpred::service {
namespace {

using namespace std::chrono_literals;

TEST(ServiceSoak, ChaosMatrixNeverCorruptsAnAnswer)
{
    if (!serviceBinariesBuilt())
        GTEST_SKIP() << "service binaries not built in this tree";

    unsigned clients = 4;
    if (const char *env = std::getenv("RARPRED_SOAK_CLIENTS"))
        clients = (unsigned)std::strtoul(env, nullptr, 10);
    if (clients == 0)
        clients = 1;

    const SweepRequestMsg req = [] {
        SweepRequestMsg r = smallRequest();
        r.workloads = {"li", "com"};
        return r;
    }();

    // Clean reference table.
    Paths ref_paths("soak_ref");
    const int ref_pid = spawnDaemon("", ref_paths);
    ASSERT_GT(ref_pid, 0);
    auto reference = ServiceClient(ref_paths.socket).sweep(req);
    ASSERT_TRUE(reference.ok()) << reference.status().toString();
    stopDaemon(ref_pid);
    const std::string want =
        ServiceClient::replyTable(req, *reference);

    // Each matrix entry arms one fault family in a fresh daemon over
    // a fresh store — a warm store would starve the write-path
    // faults (store_corrupt, daemon_kill) of anything to corrupt.
    // The last round's store feeds the final replay drill.
    const char *matrix[] = {
        "conn_drop:*x3",
        "request_torn:*x3",
        "store_corrupt:*x2",
        "daemon_kill:1",
    };

    int round_no = 0;
    Paths paths("soak_r0");
    for (const char *fault : matrix) {
        SCOPED_TRACE(fault);
        paths = Paths("soak_r" + std::to_string(round_no++));
        const int pid = spawnDaemon(
            std::string("RARPRED_FAULT=") + fault, paths);
        ASSERT_GT(pid, 0);

        std::atomic<unsigned> completed{0};
        std::vector<std::thread> fleet;
        std::vector<int> mismatches(clients, 0);
        for (unsigned c = 0; c < clients; ++c) {
            fleet.emplace_back([&, c] {
                const ServiceClient client(paths.socket);
                for (int round = 0; round < 4; ++round) {
                    SweepRequestMsg mine = req;
                    mine.tenant = "tenant-" + std::to_string(c);
                    const auto reply = client.sweep(mine);
                    if (!reply.ok())
                        continue; // injected fault: availability hit
                    ++completed;
                    if (ServiceClient::replyTable(mine, *reply) !=
                        want)
                        ++mismatches[c];
                }
            });
        }
        for (std::thread &t : fleet)
            t.join();
        for (unsigned c = 0; c < clients; ++c)
            EXPECT_EQ(mismatches[c], 0) << "client " << c;

        // The daemon either survived the round (anything but
        // daemon_kill) or died by the injected SIGKILL.
        stopDaemon(pid);
    }

    // After the entire fault matrix: a clean daemon over the same
    // battered store must replay the reference byte-identically,
    // with at least one cell served from disk, and answer STATUS.
    const int final_pid = spawnDaemon("", paths);
    ASSERT_GT(final_pid, 0);
    auto replay = ServiceClient(paths.socket).sweep(req);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(ServiceClient::replyTable(req, *replay), want);
    EXPECT_GT(replay->done.storeHits, 0u);
    const auto status = ServiceClient(paths.socket).status();
    ASSERT_TRUE(status.ok()) << status.status().toString();
    EXPECT_EQ(status->counters.protoErrors, 0u);
    stopDaemon(final_pid);
}

} // namespace
} // namespace rarpred::service
