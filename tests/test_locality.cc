/**
 * @file
 * Unit tests for the Section 2 locality analyses.
 */

#include <gtest/gtest.h>

#include "analysis/inst_mix.hh"
#include "analysis/locality.hh"

namespace rarpred {
namespace {

DynInst
load(uint64_t pc, uint64_t addr, uint64_t value = 0, uint64_t seq = 0)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.op = Opcode::Lw;
    di.dst = 1;
    di.eaddr = addr;
    di.value = value;
    return di;
}

DynInst
store(uint64_t pc, uint64_t addr, uint64_t value = 0)
{
    DynInst di;
    di.pc = pc;
    di.op = Opcode::Sw;
    di.src2 = 1;
    di.eaddr = addr;
    di.value = value;
    return di;
}

TEST(RarLocality, SingleStableDependenceHasLocality1)
{
    RarLocalityAnalyzer a(0, 4);
    for (int i = 0; i < 10; ++i) {
        a.onInst(load(0x100, 0xA000)); // source (re-reads)
        a.onInst(load(0x200, 0xA000)); // sink
    }
    // Source executions are themselves self-RAR sinks too; restrict
    // to the measured totals.
    EXPECT_GT(a.sinkExecutions(), 0u);
    auto loc = a.locality();
    // After warmup every sink sees the dependence it saw last time.
    EXPECT_GT(loc[0], 0.8);
    EXPECT_LE(loc[0], 1.0);
}

TEST(RarLocality, AlternatingSourcesNeedDepthTwo)
{
    RarLocalityAnalyzer a(0, 4);
    // The sink at 0x300 alternates between sources 0x100 and 0x200:
    // each round a store clears the address, then one of the two
    // sources re-reads it first.
    for (int i = 0; i < 40; ++i) {
        a.onInst(store(0x50, 0xA000));
        uint64_t src = (i % 2 == 0) ? 0x100 : 0x200;
        a.onInst(load(src, 0xA000));
        a.onInst(load(0x300, 0xA000));
    }
    auto loc = a.locality();
    // locality(1) fails (the previous dependence had the other
    // source); locality(2) captures the alternation.
    EXPECT_LT(loc[0], 0.2);
    EXPECT_GT(loc[1], 0.9);
}

TEST(RarLocality, StoreEndsChains)
{
    RarLocalityAnalyzer a(0, 4);
    a.onInst(load(0x100, 0xA000));
    a.onInst(store(0x50, 0xA000));
    a.onInst(load(0x200, 0xA000)); // no RAR: the store intervened
    EXPECT_EQ(a.sinkExecutions(), 0u);
}

TEST(RarLocality, BoundedWindowMissesDistantDeps)
{
    RarLocalityAnalyzer bounded(4, 4);
    RarLocalityAnalyzer infinite(0, 4);
    auto run = [](RarLocalityAnalyzer &a) {
        a.onInst(load(0x100, 0xA000));
        // More unique addresses than the window holds.
        for (uint64_t i = 0; i < 8; ++i)
            a.onInst(load(0x300, 0xB000 + i * 8));
        a.onInst(load(0x200, 0xA000));
    };
    run(bounded);
    run(infinite);
    EXPECT_LT(bounded.sinkExecutions(), infinite.sinkExecutions());
}

TEST(RarLocality, TotalLoadsCounted)
{
    RarLocalityAnalyzer a(0, 4);
    a.onInst(load(0x100, 0xA000));
    a.onInst(load(0x200, 0xB000));
    a.onInst(store(0x50, 0xC000));
    EXPECT_EQ(a.totalLoads(), 2u);
}

TEST(AddrValueLocality, AddressLocalityDetected)
{
    AddressValueLocalityAnalyzer a(DdtConfig{});
    a.onInst(load(0x100, 0xA000, 1));
    a.onInst(load(0x100, 0xA000, 1));
    a.onInst(load(0x100, 0xB000, 1));
    const auto &addr = a.address();
    EXPECT_EQ(addr.loads, 3u);
    // Second execution: same address (local). Third: different.
    uint64_t local_total = addr.localByCategory[0] +
                           addr.localByCategory[1] +
                           addr.localByCategory[2];
    EXPECT_EQ(local_total, 1u);
}

TEST(AddrValueLocality, ValueLocalityIndependentOfAddress)
{
    AddressValueLocalityAnalyzer a(DdtConfig{});
    a.onInst(load(0x100, 0xA000, 7));
    a.onInst(load(0x100, 0xB000, 7)); // new address, same value
    const auto &value = a.value();
    uint64_t local_total = value.localByCategory[0] +
                           value.localByCategory[1] +
                           value.localByCategory[2];
    EXPECT_EQ(local_total, 1u);
    const auto &addr = a.address();
    uint64_t addr_local = addr.localByCategory[0] +
                          addr.localByCategory[1] +
                          addr.localByCategory[2];
    EXPECT_EQ(addr_local, 0u);
}

TEST(AddrValueLocality, CategorizesByDetectedDependence)
{
    AddressValueLocalityAnalyzer a(DdtConfig{});
    // RAW-categorized load.
    a.onInst(store(0x50, 0xA000, 1));
    a.onInst(load(0x100, 0xA000, 1));
    // RAR-categorized load.
    a.onInst(load(0x200, 0xB000, 2));
    a.onInst(load(0x300, 0xB000, 2));
    // No-dependence load.
    a.onInst(load(0x400, 0xC000, 3));
    const auto &addr = a.address();
    EXPECT_EQ(addr.byCategory[(int)DepCategory::Raw], 1u);
    EXPECT_EQ(addr.byCategory[(int)DepCategory::Rar], 1u);
    // The first load of 0xB000 and the load of 0xC000.
    EXPECT_EQ(addr.byCategory[(int)DepCategory::None], 2u);
}

TEST(WorkingSet, CountsUniqueSourcesPerSink)
{
    DependenceWorkingSetAnalyzer a(0);
    // Sink 0x300 sees two distinct sources across rounds.
    for (int i = 0; i < 10; ++i) {
        a.onInst(store(0x50, 0xA000));
        a.onInst(load(i % 2 ? 0x100 : 0x200, 0xA000));
        a.onInst(load(0x300, 0xA000));
    }
    EXPECT_EQ(a.staticSinks(), 1u);
    EXPECT_DOUBLE_EQ(a.meanWorkingSet(), 2.0);
    EXPECT_DOUBLE_EQ(a.fractionWithWorkingSetAtMost(1), 0.0);
    EXPECT_DOUBLE_EQ(a.fractionWithWorkingSetAtMost(2), 1.0);
}

TEST(WorkingSet, EmptyWhenNoRarDeps)
{
    DependenceWorkingSetAnalyzer a(0);
    a.onInst(load(0x100, 0xA000));
    a.onInst(store(0x50, 0xA000));
    a.onInst(load(0x200, 0xB000));
    EXPECT_EQ(a.staticSinks(), 0u);
    EXPECT_DOUBLE_EQ(a.meanWorkingSet(), 0.0);
}

TEST(InstMix, CountsClasses)
{
    InstMixCounter mix;
    mix.onInst(load(0x100, 0xA000));
    mix.onInst(store(0x50, 0xA000));
    DynInst branch;
    branch.op = Opcode::Beq;
    mix.onInst(branch);
    DynInst fp;
    fp.op = Opcode::FmulD;
    mix.onInst(fp);
    EXPECT_EQ(mix.total(), 4u);
    EXPECT_EQ(mix.loads(), 1u);
    EXPECT_EQ(mix.stores(), 1u);
    EXPECT_EQ(mix.control(), 1u);
    EXPECT_EQ(mix.fpOps(), 1u);
    EXPECT_DOUBLE_EQ(mix.loadFraction(), 0.25);
}

TEST(InstMix, TeeFansOut)
{
    InstMixCounter a, b;
    TeeSink tee{&a, &b};
    tee.onInst(load(0x100, 0xA000));
    EXPECT_EQ(a.loads(), 1u);
    EXPECT_EQ(b.loads(), 1u);
}

} // namespace
} // namespace rarpred
