/**
 * @file
 * Shared helpers for the sweep-service test suites (test_service,
 * test_service_soak): temp socket/store paths, a canonical small
 * request, and subprocess control of the real rarpredd binary.
 *
 * The subprocess helpers need RARPRED_SERVICE_DIR (the build's
 * service/ output directory) compiled into the test target; callers
 * self-skip via serviceBinariesBuilt() when the binaries are absent.
 */

#ifndef RARPRED_TESTS_SERVICE_TEST_UTIL_HH_
#define RARPRED_TESTS_SERVICE_TEST_UTIL_HH_

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "service/client.hh"
#include "service/daemon.hh"

#ifndef RARPRED_SERVICE_DIR
#define RARPRED_SERVICE_DIR ""
#endif

namespace rarpred::service {

/** Fresh socket/store paths under the test temp dir. */
struct Paths
{
    std::string socket;
    std::string store;

    explicit Paths(const std::string &tag)
    {
        const std::string dir = ::testing::TempDir();
        socket = dir + "rarpredd_" + tag + ".sock";
        store = dir + "rarpredd_" + tag + ".store";
        // A fresh run must start cold even if a previous test
        // process left its store behind in the shared temp dir.
        // Deleted with plain syscalls, not system("rm -rf"):
        // subprocess spawning is unreliable under sanitizers.
        std::remove(socket.c_str());
        removeFlatDir(store);
    }

    /** Remove a flat directory (the store has no subdirectories). */
    static void
    removeFlatDir(const std::string &path)
    {
        if (DIR *d = ::opendir(path.c_str())) {
            while (const dirent *e = ::readdir(d)) {
                const std::string name = e->d_name;
                if (name != "." && name != "..")
                    std::remove((path + "/" + name).c_str());
            }
            ::closedir(d);
            ::rmdir(path.c_str());
        }
    }
};

inline DaemonConfig
testDaemonConfig(const Paths &paths)
{
    DaemonConfig config;
    config.socketPath = paths.socket;
    config.storeDir = paths.store;
    config.workers = 2;
    config.maxAttempts = 1; // fail fast: tests inject the faults
    config.requestTimeoutMs = 2000;
    return config;
}

/** A 2-cell grid ("li" x {base core, RAR cloaking}) that simulates
 *  in well under a second. */
inline SweepRequestMsg
smallRequest()
{
    SweepRequestMsg req;
    req.maxInsts = 20000;
    req.workloads = {"li"};
    CellConfigMsg base;
    base.cloakEnabled = 0;
    CellConfigMsg rar;
    rar.cloakEnabled = 1;
    req.configs = {base, rar};
    return req;
}

/** Bare connected socket to the daemon (no request sent); -1 on
 *  failure. Caller closes. */
inline int
rawConnect(const std::string &socket_path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

inline std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

inline bool
serviceBinariesBuilt()
{
    return std::ifstream(std::string(RARPRED_SERVICE_DIR) +
                         "/rarpredd")
        .good();
}

/**
 * Launch rarpredd in the background over @p paths and wait until it
 * answers a STATUS probe.
 * @param extra_env e.g. "RARPRED_FAULT=daemon_kill:1" ("" for none).
 * @return the daemon pid, or -1 on failure.
 */
inline int
spawnDaemon(const std::string &extra_env, const Paths &paths,
            const std::string &extra_flags = "")
{
    const std::string bin =
        std::string(RARPRED_SERVICE_DIR) + "/rarpredd";
    const std::string pidfile = paths.store + ".pid";
    std::remove(pidfile.c_str());
    const std::string cmd =
        extra_env + " " + bin + " --socket=" + paths.socket +
        " --store=" + paths.store + " --workers=2 " + extra_flags +
        " >/dev/null 2>/dev/null & echo $! > " + pidfile;
    if (std::system(("sh -c '" + cmd + "'").c_str()) != 0)
        return -1;
    const ServiceClient client(paths.socket);
    for (int i = 0; i < 200; ++i) {
        if (client.status().ok()) {
            std::ifstream in(pidfile);
            int pid = -1;
            in >> pid;
            return pid;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return -1;
}

/** SIGTERM @p pid and wait for it to exit (SIGKILL as last resort). */
inline void
stopDaemon(int pid)
{
    if (pid <= 0)
        return;
    ::kill(pid, SIGTERM);
    for (int i = 0; i < 200; ++i) {
        if (::kill(pid, 0) != 0)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::kill(pid, SIGKILL);
}

} // namespace rarpred::service

#endif // RARPRED_TESTS_SERVICE_TEST_UTIL_HH_
