/**
 * @file
 * Fault-injection harness and speculation-safety oracle tests.
 *
 * The headline property: with bits flipping in the DDT, DPNT, synonym
 * file and store-set tables while a program runs, the committed
 * architectural results must be bit-identical to a fault-free golden
 * execution — on every workload in the suite. Predictor state is
 * performance-only; the verification load is the safety net, and these
 * tests tear holes in everything above it.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/cloaking.hh"
#include "driver/sweep_journal.hh"
#include "driver/trace_cache.hh"
#include "faultinject/driver_faults.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/safety_oracle.hh"
#include "predictor/store_sets.hh"
#include "vm/micro_vm.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

/** Run @p n instructions of a small workload through @p engine so its
 *  tables hold live state worth corrupting. */
void
warmEngine(CloakingEngine &engine, uint64_t n)
{
    const Program program = findWorkload("com").build(1);
    MicroVM vm(program); // the Program must outlive the VM
    DynInst di;
    for (uint64_t i = 0; i < n && vm.next(di); ++i)
        engine.processInst(di);
}

TEST(FaultInjector, InjectsIntoEveryWarmedStructure)
{
    CloakingEngine engine{CloakingConfig{}};
    warmEngine(engine, 20'000);
    ASSERT_GT(engine.synonymFile().size(), 0u);
    StoreSetPredictor store_sets;

    FaultInjectorConfig config;
    config.seed = 42;
    config.ratePerStep = 1.0; // hit every structure on every step
    FaultInjector injector(config);
    injector.attach(&engine);
    injector.attach(&store_sets);
    for (int i = 0; i < 200; ++i)
        injector.step();

    EXPECT_GT(injector.faultsDdt(), 0u);
    EXPECT_GT(injector.faultsDpnt(), 0u);
    EXPECT_GT(injector.faultsSynonymFile(), 0u);
    EXPECT_GT(injector.faultsStoreSets(), 0u);
    EXPECT_EQ(injector.faultsInjected(),
              injector.faultsDdt() + injector.faultsDpnt() +
                  injector.faultsSynonymFile() +
                  injector.faultsStoreSets());
}

TEST(FaultInjector, SameSeedReplaysSameFaultSequence)
{
    auto run = [](uint64_t seed) {
        CloakingEngine engine{CloakingConfig{}};
        warmEngine(engine, 10'000);
        FaultInjectorConfig config;
        config.seed = seed;
        config.ratePerStep = 0.25;
        FaultInjector injector(config);
        injector.attach(&engine);
        for (int i = 0; i < 1000; ++i)
            injector.step();
        return injector.faultsInjected();
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8)); // and the seed actually matters
}

TEST(FaultInjector, DisabledTargetsAreNeverTouched)
{
    CloakingEngine engine{CloakingConfig{}};
    warmEngine(engine, 10'000);
    FaultInjectorConfig config;
    config.ratePerStep = 1.0;
    config.targetDdt = false;
    config.targetSynonymFile = false;
    FaultInjector injector(config);
    injector.attach(&engine);
    for (int i = 0; i < 100; ++i)
        injector.step();
    EXPECT_EQ(injector.faultsDdt(), 0u);
    EXPECT_EQ(injector.faultsSynonymFile(), 0u);
    EXPECT_GT(injector.faultsDpnt(), 0u);
}

TEST(FaultInjector, ZeroRateIsInert)
{
    CloakingEngine engine{CloakingConfig{}};
    warmEngine(engine, 5'000);
    FaultInjector injector(FaultInjectorConfig{});
    injector.attach(&engine);
    for (int i = 0; i < 100; ++i)
        injector.step();
    EXPECT_EQ(injector.faultsInjected(), 0u);
}

TEST(FaultInjector, StoreSetInjectionAlwaysLands)
{
    // SSIT/LFST are plain arrays: every injection attempt must land.
    StoreSetPredictor store_sets;
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(store_sets.injectFault(rng));
}

TEST(FaultInjector, RegisterStatsExposesPerTargetCounters)
{
    CloakingEngine engine{CloakingConfig{}};
    warmEngine(engine, 10'000);
    FaultInjectorConfig config;
    config.ratePerStep = 1.0;
    FaultInjector injector(config);
    injector.attach(&engine);
    StatGroup group("faults");
    injector.registerStats(group);
    for (int i = 0; i < 50; ++i)
        injector.step();
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("faults.faultsDdt"), std::string::npos);
    EXPECT_NE(os.str().find("faults.faultsDpnt"), std::string::npos);
    EXPECT_NE(os.str().find("faults.faultsSynonymFile"),
              std::string::npos);
    EXPECT_NE(os.str().find("faults.faultsStoreSets"), std::string::npos);
}

TEST(CorruptTraceFile, DamageIsCaughtByReaderCrc)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_corrupt_me.rar";
    {
        TraceFileWriter writer(path);
        const Program program = findWorkload("li").build(1);
        MicroVM vm(program);
        pumpTrace(vm, writer, 2'000);
        ASSERT_TRUE(writer.finish().ok());
    }

    auto flipped = corruptTraceFile(path, 16, /*seed=*/11);
    ASSERT_TRUE(flipped.ok());
    EXPECT_EQ(*flipped, 16u);

    TraceFileReader::Options options;
    options.resyncOnCorruption = true;
    TraceFileReader reader(path, options);
    ASSERT_TRUE(reader.status().ok());
    DynInst di;
    while (reader.next(di)) {
    }
    // Flips can land in a record's trailing pad (harmless by design),
    // but with 16 of them some must hit checksummed payload bytes.
    EXPECT_GT(reader.stats().corruptionsDetected.value() +
                  reader.stats().invalidRecords.value(),
              0u);
    EXPECT_EQ(reader.stats().recordsSkipped.value(),
              reader.totalRecords() - reader.recordsRead());
}

TEST(CorruptTraceFile, MissingFileIsIoError)
{
    auto flipped = corruptTraceFile("/nonexistent/trace.rar", 4, 1);
    ASSERT_FALSE(flipped.ok());
    EXPECT_EQ(flipped.status().code(), StatusCode::IoError);
}

// -------------------------------------------- driver fault points

/** Driver fault points are process-global; always leave them clean. */
class DriverFaults : public ::testing::Test
{
  protected:
    void SetUp() override { disarmDriverFaults(); }
    void TearDown() override { disarmDriverFaults(); }
};

TEST_F(DriverFaults, FiresOnlyAtArmedIndexAndConsumesBudget)
{
    armDriverFault(DriverFaultPoint::JobCrash, 3, 2);
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobCrash, 2));
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobHang, 3));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    // Budget exhausted: the point goes inert.
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::JobCrash), 2u);
}

TEST_F(DriverFaults, WildcardIndexMatchesEverything)
{
    armDriverFault(DriverFaultPoint::CachePressure, kDriverFaultAnyIndex,
                   3);
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::CachePressure, 0));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::CachePressure, 17));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::CachePressure, 99));
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::CachePressure, 0));
}

TEST_F(DriverFaults, DisarmedPointsNeverFire)
{
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobCrash, i));
        EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobKill, i));
    }
}

TEST_F(DriverFaults, SpecParsesPointsIndicesAndBudgets)
{
    ASSERT_TRUE(
        armDriverFaultsFromSpec("job_crash:3x2,cache_pressure:*").ok());
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobCrash, 2));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobCrash, 3));
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::CachePressure, 7));
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::CachePressure, 7));
}

TEST_F(DriverFaults, SpecRejectsGarbageRecoverably)
{
    EXPECT_EQ(armDriverFaultsFromSpec("launch_missiles:1").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(armDriverFaultsFromSpec("job_crash").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(armDriverFaultsFromSpec("job_crash:zap").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(armDriverFaultsFromSpec("job_crash:1x").code(),
              StatusCode::InvalidArgument);
}

TEST_F(DriverFaults, EnvArmingMatchesSpecArming)
{
    ASSERT_EQ(setenv("RARPRED_FAULT", "job_hang:5", 1), 0);
    EXPECT_TRUE(armDriverFaultsFromEnv().ok());
    unsetenv("RARPRED_FAULT");
    EXPECT_TRUE(driverFaultFires(DriverFaultPoint::JobHang, 5));
    EXPECT_FALSE(driverFaultFires(DriverFaultPoint::JobHang, 5));

    // Unset env is a no-op, not an error.
    EXPECT_TRUE(armDriverFaultsFromEnv().ok());
}

TEST_F(DriverFaults, TornWriteLatchesJournalError)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_torn_journal.rarj";
    auto journal = driver::SweepJournal::create(path, 0xfeed, 4);
    ASSERT_TRUE(journal.ok());
    const uint64_t payload = 42;
    ASSERT_TRUE((*journal)->append(0, &payload, sizeof(payload)).ok());

    armDriverFault(DriverFaultPoint::JournalTornWrite, 1);
    EXPECT_EQ((*journal)->append(1, &payload, sizeof(payload)).code(),
              StatusCode::IoError);
    // The error latches: later appends refuse instead of writing a
    // record after the torn bytes.
    EXPECT_EQ((*journal)->append(2, &payload, sizeof(payload)).code(),
              StatusCode::IoError);
    EXPECT_EQ((*journal)->recordsAppended(), 1u);

    // Recovery sees the completed record and drops the torn tail.
    auto replay = driver::SweepJournal::load(path);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay->records.size(), 1u);
    EXPECT_EQ(replay->tornRecords, 1u);
    std::remove(path.c_str());
}

// ------------------------- corrupt trace files through the cache

TEST(TraceCacheRecovery, CorruptTraceLoadsThroughCacheUnderContention)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_corrupt_cached.rar";
    {
        TraceFileWriter writer(path);
        const Program program = findWorkload("li").build(1);
        MicroVM vm(program);
        pumpTrace(vm, writer, 4'000);
        ASSERT_TRUE(writer.finish().ok());
    }
    auto flipped = corruptTraceFile(path, 16, /*seed=*/23);
    ASSERT_TRUE(flipped.ok());

    // Eight threads race the same damaged file through the cache with
    // resync-recovery on: every thread must get the *same* recovered
    // trace, generated exactly once, with the reader's corruption
    // counters surfaced in the cache stats.
    driver::TraceCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const RecordedTrace>> got(kThreads);
    std::vector<Status> errors(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            auto r = cache.getFile(path, ~0ull, /*resync=*/true);
            if (r.ok())
                got[t] = *r;
            else
                errors[t] = r.status();
        });
    for (auto &t : threads)
        t.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_TRUE(got[t] != nullptr) << errors[t].toString();
        EXPECT_EQ(got[t].get(), got[0].get());
    }
    const auto s = cache.stats();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, kThreads - 1);
    EXPECT_GT(s.fileCorruptions, 0u);
    EXPECT_GT(got[0]->size(), 0u);
    std::remove(path.c_str());
}

TEST(TraceCacheRecovery, StrictModeSurfacesCorruptionAsError)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_corrupt_strict.rar";
    {
        TraceFileWriter writer(path);
        const Program program = findWorkload("com").build(1);
        MicroVM vm(program);
        pumpTrace(vm, writer, 2'000);
        ASSERT_TRUE(writer.finish().ok());
    }
    ASSERT_TRUE(corruptTraceFile(path, 32, /*seed=*/5).ok());

    driver::TraceCache cache;
    auto strict = cache.getFile(path, ~0ull, /*resync=*/false);
    // 32 flips are overwhelmingly likely to hit checksummed bytes; in
    // strict mode that is a hard error, not a silent skip.
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(SafetyOracle, InvalidConfigIsRecoverable)
{
    OracleConfig config;
    config.cloaking.dpnt.geometry = {24, 2}; // 12 sets: not a power of 2
    auto report = runSafetyOracle(findWorkload("go").build(1), config);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::InvalidArgument);
}

TEST(SafetyOracle, FaultFreeRunPasses)
{
    OracleConfig config;
    config.maxInsts = 50'000;
    auto report = runSafetyOracle(findWorkload("gcc").build(1), config);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->passed) << report->firstDivergence;
    EXPECT_EQ(report->faultsInjected, 0u);
    EXPECT_EQ(report->instructions, 50'000u);
    EXPECT_GT(report->specUsed, 0u);
    EXPECT_EQ(report->goldenDigest, report->faultedDigest);
}

TEST(SafetyOracle, ReportIsDeterministic)
{
    OracleConfig config;
    config.maxInsts = 30'000;
    config.faults.ratePerStep = 1e-2;
    config.faults.seed = 99;
    const Program program = findWorkload("swm").build(1);
    auto a = runSafetyOracle(program, config);
    auto b = runSafetyOracle(program, config);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->faultsInjected, b->faultsInjected);
    EXPECT_EQ(a->specUsed, b->specUsed);
    EXPECT_EQ(a->specSquashed, b->specSquashed);
    EXPECT_EQ(a->faultedDigest, b->faultedDigest);
}

/** The headline suite: the safety property must hold on every workload
 *  with faults landing at well above the required 1e-4 rate. */
class SafetyOracleAllWorkloads
    : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(SafetyOracleAllWorkloads, SurvivesFaultInjection)
{
    const Workload &wl = *GetParam();
    OracleConfig config;
    config.cloaking.dpnt.geometry = {8192, 2}; // the paper's tables:
    config.cloaking.sf = {1024, 2};            // realistic conflict load
    config.faults.ratePerStep = 1e-3;
    config.faults.seed = 0xC0FFEE;
    config.maxInsts = 120'000;
    auto report = runSafetyOracle(wl.build(1), config);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report->passed)
        << wl.fullName << ": " << report->firstDivergence;
    EXPECT_GT(report->faultsInjected, 0u) << wl.fullName;
    EXPECT_GT(report->instructions, 0u);
    EXPECT_EQ(report->divergences, 0u);
}

std::vector<const Workload *>
workloadPointers()
{
    std::vector<const Workload *> out;
    for (const Workload &wl : allWorkloads())
        out.push_back(&wl);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SafetyOracleAllWorkloads,
    ::testing::ValuesIn(workloadPointers()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        // Abbreviations like "fp*" aren't valid gtest identifiers;
        // keep alphanumerics and index-suffix for uniqueness.
        std::string name;
        for (char c : info.param->abbrev)
            if (std::isalnum((unsigned char)c))
                name += c;
        return name + "_" + std::to_string(info.index);
    });

} // namespace
} // namespace rarpred
