/**
 * @file
 * Tests for the recoverable error-handling core: Status, Result<T>,
 * and the config-validation helpers built on them.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/crc32.hh"
#include "common/hybrid_table.hh"
#include "common/status.hh"
#include "core/cloaking.hh"

namespace rarpred {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    Status s = Status::notFound("no such thing");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::NotFound);
    EXPECT_EQ(s.message(), "no such thing");
    EXPECT_EQ(s.toString(), "not-found: no such thing");

    EXPECT_EQ(Status::ioError("x").code(), StatusCode::IoError);
    EXPECT_EQ(Status::corruption("x").code(), StatusCode::Corruption);
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::OutOfRange);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(Status::deadlineExceeded("x").code(),
              StatusCode::DeadlineExceeded);
    EXPECT_EQ(Status::cancelled("x").code(), StatusCode::Cancelled);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::Internal);
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::Corruption), "corruption");
    EXPECT_STREQ(statusCodeName(StatusCode::IoError), "io-error");
    EXPECT_STREQ(statusCodeName(StatusCode::DeadlineExceeded),
                 "deadline-exceeded");
    EXPECT_STREQ(statusCodeName(StatusCode::Cancelled), "cancelled");
    EXPECT_STREQ(statusCodeName(StatusCode::Internal), "internal");
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError)
{
    Result<int> r(Status::notFound("nope"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    EXPECT_EQ(r.status().message(), "nope");
}

TEST(Result, MoveOnlyValue)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(**r, 7);
    std::unique_ptr<int> taken = std::move(r.value());
    EXPECT_EQ(*taken, 7);
}

TEST(Result, ValueOnErrorPanics)
{
    Result<int> r(Status::ioError("disk on fire"));
    EXPECT_DEATH((void)r.value(), "disk on fire");
}

TEST(Result, ConstructingFromOkStatusPanics)
{
    EXPECT_DEATH(Result<int> r{Status{}}, "OK status");
}

TEST(ValidateGeometry, AcceptsUnboundedAndFullyAssociative)
{
    EXPECT_TRUE(validateGeometry({0, 0}, "t").ok());
    EXPECT_TRUE(validateGeometry({128, 0}, "t").ok());
    EXPECT_TRUE(validateGeometry({128, 128}, "t").ok());
    EXPECT_TRUE(validateGeometry({8192, 2}, "t").ok());
}

TEST(ValidateGeometry, RejectsIndivisibleEntries)
{
    Status s = validateGeometry({100, 3}, "dpnt");
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("dpnt"), std::string::npos);
}

TEST(ValidateGeometry, RejectsNonPowerOfTwoSets)
{
    Status s = validateGeometry({24, 2}, "sf");
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("power of two"), std::string::npos);
}

TEST(ValidateCloakingConfig, DefaultIsValid)
{
    EXPECT_TRUE(CloakingConfig{}.validate().ok());
}

TEST(ValidateCloakingConfig, PaperGeometryIsValid)
{
    CloakingConfig config;
    config.dpnt.geometry = {8192, 2};
    config.sf = {1024, 2};
    EXPECT_TRUE(config.validate().ok());
}

TEST(ValidateCloakingConfig, BadDpntGeometryIsRecoverable)
{
    CloakingConfig config;
    config.dpnt.geometry = {24, 2}; // 12 sets: not a power of two
    EXPECT_EQ(config.validate().code(), StatusCode::InvalidArgument);
}

TEST(ValidateCloakingConfig, AbsurdGranularityIsRecoverable)
{
    CloakingConfig config;
    config.ddt.granularityLog2 = 40;
    EXPECT_EQ(config.validate().code(), StatusCode::OutOfRange);
}

TEST(Crc32, KnownVectors)
{
    // The standard check value for CRC-32/IEEE.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "read-after-read memory dependence";
    uint32_t inc = crc32Update(0, data.data(), 10);
    inc = crc32Update(inc, data.data() + 10, data.size() - 10);
    EXPECT_EQ(inc, crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip)
{
    uint64_t word = 0x0123456789abcdefull;
    const uint32_t clean = crc32(&word, sizeof(word));
    for (int bit = 0; bit < 64; ++bit) {
        word ^= 1ull << bit;
        EXPECT_NE(crc32(&word, sizeof(word)), clean) << "bit " << bit;
        word ^= 1ull << bit;
    }
}

} // namespace
} // namespace rarpred
