/**
 * @file
 * Golden-regression test: every workload runs through the paper's
 * default RAW+RAR cloaking configuration (Section 5.6.1 geometry) and
 * its key counters — loads, detected RAW/RAR dependences, covered and
 * mispredicted loads — are compared exactly against checked-in
 * baselines in tests/golden/*.json.
 *
 * A mismatch means simulator behaviour changed. If the change is
 * intended, regenerate the baselines and review the diff like any
 * other code change:
 *
 *     ./build/tests/test_golden_stats --update-golden
 *
 * (writes to the source tree's tests/golden/; see tests/README.md).
 * Traces are capped at 500k instructions per workload so the whole
 * suite stays inside the tier1 budget.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/cloaking.hh"
#include "driver/trace_cache.hh"
#include "vm/trace.hh"
#include "workload/factory.hh"
#include "workload/workload.hh"

#ifndef RARPRED_GOLDEN_DIR
#error "build must define RARPRED_GOLDEN_DIR"
#endif

namespace rarpred {

/** Set by main() when invoked with --update-golden. */
bool g_update_golden = false;

namespace {

constexpr uint64_t kMaxInsts = 500'000;

/** The paper's default mechanism (Section 5.6.1), RAW+RAR. */
CloakingConfig
defaultCloakingConfig()
{
    CloakingConfig config;
    config.mode = CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.dpnt.confidence = ConfidenceKind::TwoBitAdaptive;
    config.sf = {1024, 2};
    return config;
}

/** "fp*" is a valid workload name but not a valid file name. */
std::string
fileNameFor(const std::string &abbrev)
{
    std::string out;
    for (char c : abbrev) {
        if (std::isalnum((unsigned char)c))
            out += c;
        else if (c == '*')
            out += "star";
        else
            out += '_';
    }
    return out + ".json";
}

std::string
goldenPathFor(const std::string &abbrev)
{
    return std::string(RARPRED_GOLDEN_DIR) + "/" + fileNameFor(abbrev);
}

/** The counters pinned by the baselines, in serialization order. */
std::vector<std::pair<std::string, uint64_t>>
pinnedCounters(const CloakingStats &s)
{
    return {
        {"loads", s.loads},
        {"stores", s.stores},
        {"detectedRaw", s.detectedRaw},
        {"detectedRar", s.detectedRar},
        {"coveredRaw", s.coveredRaw},
        {"coveredRar", s.coveredRar},
        {"mispredRaw", s.mispredRaw},
        {"mispredRar", s.mispredRar},
        {"predictedEmpty", s.predictedEmpty},
    };
}

std::string
toJson(const std::string &abbrev, const CloakingStats &s)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"workload\": \"" << abbrev << "\",\n";
    os << "  \"maxInsts\": " << kMaxInsts << ",\n";
    const auto counters = pinnedCounters(s);
    for (size_t i = 0; i < counters.size(); ++i)
        os << "  \"" << counters[i].first << "\": "
           << counters[i].second
           << (i + 1 < counters.size() ? ",\n" : "\n");
    os << "}\n";
    return os.str();
}

/**
 * Minimal parser for the flat JSON this test writes: extracts every
 * "key": <unsigned integer> pair. Quoted values (the workload name)
 * are ignored.
 */
std::map<std::string, uint64_t>
parseCounters(const std::string &json)
{
    std::map<std::string, uint64_t> out;
    size_t pos = 0;
    while ((pos = json.find('"', pos)) != std::string::npos) {
        const size_t key_end = json.find('"', pos + 1);
        if (key_end == std::string::npos)
            break;
        const std::string key = json.substr(pos + 1, key_end - pos - 1);
        size_t v = json.find_first_not_of(": \t", key_end + 1);
        if (v != std::string::npos && std::isdigit((unsigned char)json[v])) {
            uint64_t value = 0;
            while (v < json.size() && std::isdigit((unsigned char)json[v]))
                value = value * 10 + (json[v++] - '0');
            out[key] = value;
        }
        pos = key_end + 1;
    }
    return out;
}

/** Shared across all 18 test cases: each trace generates once. */
driver::TraceCache &
sharedCache()
{
    static driver::TraceCache cache;
    return cache;
}

CloakingStats
runDefaultCloaking(const Workload &w)
{
    auto trace = sharedCache().get(w, 1, kMaxInsts);
    CloakingEngine engine(defaultCloakingConfig());
    trace->replayInto(engine);
    return engine.stats();
}

class GoldenStatsTest
    : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(GoldenStatsTest, MatchesCheckedInBaseline)
{
    const Workload &w = *GetParam();
    const CloakingStats stats = runDefaultCloaking(w);
    const std::string path = goldenPathFor(w.abbrev);

    if (g_update_golden) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << toJson(w.abbrev, stats);
        ASSERT_TRUE(os.good());
        std::printf("updated %s\n", path.c_str());
        return;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden baseline " << path
        << " — run test_golden_stats --update-golden and commit it";
    std::stringstream buf;
    buf << is.rdbuf();
    const auto golden = parseCounters(buf.str());

    const auto it = golden.find("maxInsts");
    ASSERT_NE(it, golden.end());
    ASSERT_EQ(it->second, kMaxInsts)
        << "baseline " << path << " was generated with a different "
        << "trace cap; regenerate with --update-golden";

    for (const auto &[name, value] : pinnedCounters(stats)) {
        const auto g = golden.find(name);
        ASSERT_NE(g, golden.end())
            << "baseline " << path << " lacks counter " << name;
        EXPECT_EQ(g->second, value)
            << w.abbrev << ": counter '" << name
            << "' diverged from " << path
            << " — if intended, rerun with --update-golden";
    }
}

std::string
testNameFor(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string name;
    for (char c : info.param->abbrev)
        name += std::isalnum((unsigned char)c) ? c : '_';
    return name;
}

std::vector<const Workload *>
paperWorkloadPtrs()
{
    std::vector<const Workload *> out;
    for (const Workload &w : allWorkloads())
        out.push_back(&w);
    return out;
}

std::vector<const Workload *>
factoryPresetPtrs()
{
    std::vector<const Workload *> out;
    for (const Workload &w : factoryPresetWorkloads())
        out.push_back(&w);
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenStatsTest,
                         ::testing::ValuesIn(paperWorkloadPtrs()),
                         testNameFor);

// The factory presets are pinned the same way: a drifting generator
// (or Rng, or kernel emitter) shows up as a counter diff here.
INSTANTIATE_TEST_SUITE_P(FactoryPresets, GoldenStatsTest,
                         ::testing::ValuesIn(factoryPresetPtrs()),
                         testNameFor);

TEST(GoldenStatsSuite, CoversEveryWorkload)
{
    ASSERT_EQ(allWorkloads().size(), 18u);
    ASSERT_EQ(factoryPresetWorkloads().size(), 6u);
}

} // namespace
} // namespace rarpred

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-golden") == 0)
            rarpred::g_update_golden = true;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
