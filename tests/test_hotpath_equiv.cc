/**
 * @file
 * Equivalence battery for the batched hot-path simulate loop.
 *
 * The performance work (DESIGN.md §7) must be invisible to every
 * counter: drainTraceBatched() and the driver's pumpSimulation() fast
 * branch must produce CpuStats and CloakingStats whose dump() output
 * is byte-identical to the retained straight-line reference pump
 * drainTrace(), on every one of the paper's 18 workloads — and a
 * sweep's merged result must stay byte-identical across worker
 * counts {1, 4, 8} while each cell runs the batched pump.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/cloaking.hh"
#include "cpu/cpu_config.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sim_snapshot.hh"
#include "driver/sweep.hh"
#include "driver/trace_cache.hh"
#include "vm/recorded_trace.hh"
#include "vm/trace.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

constexpr uint64_t kMaxInsts = 200'000;

/** Section 5.6.1 default mechanism, the golden-stats configuration. */
CloakTimingConfig
defaultCloakTiming()
{
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = CloakingMode::RawPlusRar;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.bypassing = true;
    return cloak;
}

/** Every stat line the simulator can emit, as one comparable blob. */
std::string
statsDumpOf(OooCpu &cpu)
{
    std::ostringstream os;
    cpu.stats().dump(os);
    if (cpu.cloakingEngine() != nullptr)
        cpu.cloakingEngine()->stats().dump(os);
    return os.str();
}

/** Shared across all parameterized cases: each trace records once. */
driver::TraceCache &
sharedCache()
{
    static driver::TraceCache cache;
    return cache;
}

class HotPathEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(HotPathEquivalence, BatchedPumpMatchesReferenceByteForByte)
{
    const Workload &w = allWorkloads()[GetParam()];
    auto trace = sharedCache().get(w, 1, kMaxInsts);

    // Reference: the straight-line record-at-a-time pump.
    OooCpu ref(CpuConfig{}, defaultCloakTiming());
    RecordedTraceSource ref_src(*trace);
    const uint64_t ref_n = drainTrace(ref_src, ref);

    // Hot path #1: the batched pump, directly.
    OooCpu batched(CpuConfig{}, defaultCloakTiming());
    RecordedTraceSource batched_src(*trace);
    const uint64_t batched_n = drainTraceBatched(batched_src, batched);

    // Hot path #2: the driver's pump (no snapshot/audit context in
    // this process, so it takes the batched fast branch).
    OooCpu pumped(CpuConfig{}, defaultCloakTiming());
    RecordedTraceSource pumped_src(*trace);
    const uint64_t pumped_n = driver::pumpSimulation(pumped_src,
                                                     pumped);

    EXPECT_EQ(ref_n, batched_n);
    EXPECT_EQ(ref_n, pumped_n);
    const std::string want = statsDumpOf(ref);
    EXPECT_EQ(want, statsDumpOf(batched)) << w.abbrev;
    EXPECT_EQ(want, statsDumpOf(pumped)) << w.abbrev;
}

TEST_P(HotPathEquivalence, BatchedCloakingEngineMatchesReference)
{
    // The functional accuracy pipeline (the golden-stats layer's
    // subject) through both pumps.
    const Workload &w = allWorkloads()[GetParam()];
    auto trace = sharedCache().get(w, 1, kMaxInsts);

    CloakingConfig config;
    config.mode = CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.sf = {1024, 2};

    CloakingEngine ref(config);
    RecordedTraceSource ref_src(*trace);
    drainTrace(ref_src, ref);

    CloakingEngine batched(config);
    RecordedTraceSource batched_src(*trace);
    drainTraceBatched(batched_src, batched);

    std::ostringstream want, got;
    ref.stats().dump(want);
    batched.stats().dump(got);
    EXPECT_EQ(want.str(), got.str()) << w.abbrev;
}

std::string
testNameFor(const ::testing::TestParamInfo<size_t> &info)
{
    std::string name;
    for (char c : allWorkloads()[info.param].abbrev)
        name += std::isalnum((unsigned char)c) ? c : '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, HotPathEquivalence,
                         ::testing::Range<size_t>(0, 18), testNameFor);

TEST(HotPathEquivalenceSuite, CoversEveryWorkload)
{
    ASSERT_EQ(allWorkloads().size(), 18u);
}

// ------------------------------------- merged sweep equivalence

/** One sweep over all 18 workloads, cells on the batched pump. */
std::string
mergedSweepDump(unsigned workers, driver::TraceCache *cache)
{
    driver::RunnerConfig rc;
    rc.workers = workers;
    rc.maxInsts = 60'000;
    driver::SimJobRunner runner(rc, cache);

    const CloakTimingConfig cloak = defaultCloakTiming();
    auto result = driver::runSweep(
        runner, driver::allWorkloadPtrs(), 1,
        [&cloak](const Workload &, size_t, TraceSource &trace, Rng &) {
            OooCpu cpu(CpuConfig{}, cloak);
            drainTraceBatched(trace, cpu);
            return cpu.stats();
        });
    EXPECT_TRUE(result.status.ok()) << result.status.toString();

    std::ostringstream os;
    for (size_t i = 0; i < result.size(); ++i)
        result[i].dump(os, "cell" + std::to_string(i));
    return os.str();
}

TEST(HotPathSweepEquivalence, MergedStatsIdenticalAcrossWorkerCounts)
{
    // One warm cache serves every run: worker-count comparisons then
    // replay literally the same recorded traces.
    driver::TraceCache cache;
    const std::string serial = mergedSweepDump(1, &cache);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, mergedSweepDump(4, &cache));
    EXPECT_EQ(serial, mergedSweepDump(8, &cache));

    // And the reference pump agrees with the batched cells.
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 60'000;
    driver::SimJobRunner runner(rc, &cache);
    const CloakTimingConfig cloak = defaultCloakTiming();
    auto ref = driver::runSweep(
        runner, driver::allWorkloadPtrs(), 1,
        [&cloak](const Workload &, size_t, TraceSource &trace, Rng &) {
            OooCpu cpu(CpuConfig{}, cloak);
            drainTrace(trace, cpu);
            return cpu.stats();
        });
    ASSERT_TRUE(ref.status.ok());
    std::ostringstream os;
    for (size_t i = 0; i < ref.size(); ++i)
        ref[i].dump(os, "cell" + std::to_string(i));
    EXPECT_EQ(serial, os.str());
}

} // namespace
} // namespace rarpred
