/**
 * @file
 * Tests for the extended value predictors (stride, context/FCM).
 */

#include <gtest/gtest.h>

#include "core/value_predictor.hh"

namespace rarpred {
namespace {

DynInst
load(uint64_t pc, uint64_t value, uint64_t seq = 0)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.op = Opcode::Lw;
    di.dst = 1;
    di.eaddr = 0x8000;
    di.value = value;
    return di;
}

// ----------------------------------------------------------- stride

TEST(StridePredictor, LearnsConstantStride)
{
    StrideValuePredictor p;
    int correct = 0;
    for (uint64_t i = 0; i < 20; ++i)
        correct += p.processInst(load(0x100, 100 + i * 8));
    // Needs two observations to learn the stride; afterwards exact.
    EXPECT_GE(correct, 16);
}

TEST(StridePredictor, ConstantValueIsStrideZero)
{
    StrideValuePredictor p;
    int correct = 0;
    for (int i = 0; i < 10; ++i)
        correct += p.processInst(load(0x100, 42));
    EXPECT_GE(correct, 7);
}

TEST(StridePredictor, RandomValuesRarelyPredict)
{
    StrideValuePredictor p;
    uint64_t x = 88172645463325252ull;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        correct += p.processInst(load(0x100, x));
    }
    EXPECT_LT(correct, 5);
}

TEST(StridePredictor, StrideChangeRelearns)
{
    StrideValuePredictor p;
    for (uint64_t i = 0; i < 10; ++i)
        p.processInst(load(0x100, i * 4));
    // Switch stride: a couple of misses, then correct again.
    int correct = 0;
    for (uint64_t i = 0; i < 10; ++i)
        correct += p.processInst(load(0x100, 1000 + i * 16));
    EXPECT_GE(correct, 6);
}

TEST(StridePredictor, IgnoresNonLoads)
{
    StrideValuePredictor p;
    DynInst di;
    di.op = Opcode::Add;
    EXPECT_FALSE(p.processInst(di));
    EXPECT_EQ(p.stats().loads, 0u);
}

// ---------------------------------------------------------- context

TEST(ContextPredictor, LearnsRepeatingSequence)
{
    ContextValuePredictor p;
    const uint64_t seq[] = {3, 1, 4, 1, 5, 9, 2, 6};
    int correct = 0, total = 0;
    for (int round = 0; round < 40; ++round) {
        for (uint64_t v : seq) {
            correct += p.processInst(load(0x100, v));
            ++total;
        }
    }
    // After warmup, each context reliably names the next value.
    EXPECT_GT(correct, total / 2);
}

TEST(ContextPredictor, BeatsLastValueOnAlternation)
{
    // Alternating values: last-value always wrong, context learns.
    ContextValuePredictor ctx;
    LastValuePredictor last;
    int ctx_correct = 0, last_correct = 0;
    for (int i = 0; i < 200; ++i) {
        uint64_t v = (i % 2) ? 7 : 13;
        ctx_correct += ctx.processInst(load(0x100, v));
        last_correct += last.processInst(load(0x100, v));
    }
    EXPECT_EQ(last_correct, 0);
    EXPECT_GT(ctx_correct, 150);
}

TEST(ContextPredictor, DistinctPcsSeparateContexts)
{
    ContextValuePredictor p;
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += p.processInst(load(0x100, 5));
        correct += p.processInst(load(0x200, 9));
    }
    EXPECT_GT(correct, 150);
}

TEST(ContextPredictor, StatsAccumulate)
{
    ContextValuePredictor p;
    for (int i = 0; i < 10; ++i)
        p.processInst(load(0x100, 1));
    EXPECT_EQ(p.stats().loads, 10u);
    EXPECT_GT(p.stats().correct, 0u);
}

} // namespace
} // namespace rarpred
