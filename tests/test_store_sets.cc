/**
 * @file
 * Unit tests for the store-set memory dependence predictor
 * (Chrysos & Emer [5]), plus its behaviour inside the timing model.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_cpu.hh"
#include "predictor/store_sets.hh"

namespace rarpred {
namespace {

TEST(StoreSets, NoPredictionBeforeViolation)
{
    StoreSetPredictor p;
    EXPECT_FALSE(p.onLoadDispatch(0x100).has_value());
    EXPECT_FALSE(p.onStoreDispatch(0x200, 1).has_value());
}

TEST(StoreSets, ViolationCreatesSet)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    // The store dispatches and becomes the set's last fetched store.
    p.onStoreDispatch(0x200, 7);
    auto wait = p.onLoadDispatch(0x100);
    ASSERT_TRUE(wait.has_value());
    EXPECT_EQ(*wait, 7u);
}

TEST(StoreSets, LoadWithoutInflightStoreDoesNotWait)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    // No store of the set is in flight.
    EXPECT_FALSE(p.onLoadDispatch(0x100).has_value());
}

TEST(StoreSets, StoreRetireClearsLfst)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    p.onStoreDispatch(0x200, 7);
    p.onStoreRetire(0x200, 7);
    EXPECT_FALSE(p.onLoadDispatch(0x100).has_value());
}

TEST(StoreSets, RetireOfOlderStoreKeepsYounger)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    p.onStoreDispatch(0x200, 7);
    p.onStoreDispatch(0x200, 9);
    p.onStoreRetire(0x200, 7); // stale retire must not clear seq 9
    auto wait = p.onLoadDispatch(0x100);
    ASSERT_TRUE(wait.has_value());
    EXPECT_EQ(*wait, 9u);
}

TEST(StoreSets, StoreStoreOrderingWithinSet)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    p.onViolation(0x100, 0x300); // second store joins the set
    EXPECT_FALSE(p.onStoreDispatch(0x200, 7).has_value());
    auto prev = p.onStoreDispatch(0x300, 9);
    ASSERT_TRUE(prev.has_value());
    EXPECT_EQ(*prev, 7u);
}

TEST(StoreSets, MergeUsesSmallerSsid)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200); // set 0
    p.onViolation(0x110, 0x210); // set 1
    // Cross violation merges: load 0x110 joins the smaller set.
    p.onViolation(0x110, 0x200);
    EXPECT_EQ(p.merges(), 1u);
    p.onStoreDispatch(0x200, 5);
    auto wait = p.onLoadDispatch(0x110);
    ASSERT_TRUE(wait.has_value());
    EXPECT_EQ(*wait, 5u);
}

TEST(StoreSets, ClearForgetsAssignments)
{
    StoreSetPredictor p;
    p.onViolation(0x100, 0x200);
    p.clear();
    p.onStoreDispatch(0x200, 7);
    EXPECT_FALSE(p.onLoadDispatch(0x100).has_value());
}

// ------------------------------------------ inside the timing model

/** A trace where a slow-address store conflicts with a nearby load. */
std::vector<DynInst>
violatingTrace(int reps)
{
    std::vector<DynInst> trace;
    uint64_t seq = 0;
    for (int i = 0; i < reps; ++i) {
        DynInst div;
        div.seq = seq++;
        div.pc = 0x10;
        div.op = Opcode::Div;
        div.dst = 4;
        div.src1 = 4;
        trace.push_back(div);
        DynInst st;
        st.seq = seq++;
        st.pc = 0x20;
        st.op = Opcode::Sw;
        st.src1 = 4;
        st.src2 = 2;
        st.eaddr = 0x2000;
        trace.push_back(st);
        DynInst ld;
        ld.seq = seq++;
        ld.pc = 0x30;
        ld.op = Opcode::Lw;
        ld.dst = 1;
        ld.src1 = reg::kZero;
        ld.eaddr = 0x2000;
        trace.push_back(ld);
    }
    return trace;
}

TEST(StoreSetsCpu, LearnsAndStopsViolating)
{
    CpuConfig config;
    config.memDep = MemDepPolicy::StoreSets;
    OooCpu cpu(config, {});
    for (const auto &di : violatingTrace(300))
        cpu.onInst(di);
    // After the first violation trains the set, the load waits: far
    // fewer violations than the 300 a naive machine would take.
    EXPECT_LT(cpu.stats().memOrderViolations, 20u);

    CpuConfig naive_config;
    OooCpu naive(naive_config, {});
    for (const auto &di : violatingTrace(300))
        naive.onInst(di);
    EXPECT_GT(naive.stats().memOrderViolations, 100u);
}

TEST(StoreSetsCpu, FasterThanNaiveOnViolatingCode)
{
    CpuConfig ss_config;
    ss_config.memDep = MemDepPolicy::StoreSets;
    OooCpu ss(ss_config, {});
    for (const auto &di : violatingTrace(500))
        ss.onInst(di);

    CpuConfig naive_config;
    OooCpu naive(naive_config, {});
    for (const auto &di : violatingTrace(500))
        naive.onInst(di);

    EXPECT_LT(ss.stats().cycles, naive.stats().cycles);
}

TEST(StoreSetsCpu, MatchesNaiveWhenNoViolations)
{
    // Independent loads/stores: store sets never trigger and the two
    // policies time identically.
    auto make = [] {
        std::vector<DynInst> trace;
        for (uint64_t i = 0; i < 3000; ++i) {
            DynInst di;
            di.seq = i;
            di.pc = (i % 64) * 4;
            di.op = (i % 4 == 0) ? Opcode::Sw : Opcode::Lw;
            if (di.isLoad())
                di.dst = 1;
            else
                di.src2 = 1;
            di.src1 = reg::kZero;
            di.eaddr = 0x1000 + (i % 16) * 64; // loads/stores disjoint?
            di.eaddr = di.isStore() ? 0x8000 + (i % 8) * 8
                                    : 0x1000 + (i % 8) * 8;
            trace.push_back(di);
        }
        return trace;
    };
    CpuConfig ss_config;
    ss_config.memDep = MemDepPolicy::StoreSets;
    OooCpu ss(ss_config, {});
    OooCpu naive(CpuConfig{}, {});
    for (const auto &di : make()) {
        ss.onInst(di);
        naive.onInst(di);
    }
    EXPECT_EQ(ss.stats().cycles, naive.stats().cycles);
    EXPECT_EQ(ss.stats().memOrderViolations, 0u);
}

} // namespace
} // namespace rarpred
