/**
 * @file
 * Unit tests for the common infrastructure: saturating counters, bit
 * utilities, the deterministic RNG, the associative tables, and the
 * statistics package.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "common/bitutils.hh"
#include "common/hybrid_table.hh"
#include "common/lru_table.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/set_assoc_table.hh"
#include "common/stats.hh"

namespace rarpred {
namespace {

// ---------------------------------------------------------------- bits

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, Mask)
{
    EXPECT_EQ(mask(0), 0ull);
    EXPECT_EQ(mask(1), 1ull);
    EXPECT_EQ(mask(8), 0xffull);
    EXPECT_EQ(mask(64), ~0ull);
}

// --------------------------------------------------------- sat counter

TEST(SatCounter, SaturatesHighAndLow)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0);
    c.decrement();
    EXPECT_EQ(c.value(), 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.isMax());
}

TEST(SatCounter, PredictUsesMsb)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predict());
    c.increment(); // 1
    EXPECT_FALSE(c.predict());
    c.increment(); // 2
    EXPECT_TRUE(c.predict());
    c.increment(); // 3
    EXPECT_TRUE(c.predict());
}

TEST(SatCounter, SetClampsToMax)
{
    SatCounter c(2, 0);
    c.set(200);
    EXPECT_EQ(c.value(), 3);
    c.set(1);
    EXPECT_EQ(c.value(), 1);
}

TEST(SatCounter, WidthOne)
{
    SatCounter c(1, 0);
    EXPECT_EQ(c.maxValue(), 1);
    c.increment();
    EXPECT_TRUE(c.predict());
    c.increment();
    EXPECT_EQ(c.value(), 1);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(11);
    uint64_t first = rng.next();
    rng.next();
    rng.reseed(11);
    EXPECT_EQ(rng.next(), first);
}

// ------------------------------------------------------ fully-assoc LRU

TEST(FullyAssocLru, BasicInsertFind)
{
    FullyAssocLruTable<uint64_t, int> t(4);
    EXPECT_EQ(t.find(1), nullptr);
    t.insert(1, 10);
    ASSERT_NE(t.find(1), nullptr);
    EXPECT_EQ(*t.find(1), 10);
    EXPECT_EQ(t.size(), 1u);
}

TEST(FullyAssocLru, EvictsLeastRecentlyUsed)
{
    FullyAssocLruTable<uint64_t, int> t(2);
    t.insert(1, 10);
    t.insert(2, 20);
    auto evicted = t.insert(3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);
    EXPECT_EQ(evicted->value, 10);
    EXPECT_EQ(t.find(1), nullptr);
}

TEST(FullyAssocLru, TouchRefreshesRecency)
{
    FullyAssocLruTable<uint64_t, int> t(2);
    t.insert(1, 10);
    t.insert(2, 20);
    EXPECT_NE(t.touch(1), nullptr); // 1 becomes MRU
    auto evicted = t.insert(3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u); // 2 was LRU
}

TEST(FullyAssocLru, FindDoesNotRefreshRecency)
{
    FullyAssocLruTable<uint64_t, int> t(2);
    t.insert(1, 10);
    t.insert(2, 20);
    EXPECT_NE(t.find(1), nullptr); // does not touch
    auto evicted = t.insert(3, 30);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u); // 1 still LRU
}

TEST(FullyAssocLru, OverwriteDoesNotEvict)
{
    FullyAssocLruTable<uint64_t, int> t(2);
    t.insert(1, 10);
    t.insert(2, 20);
    auto evicted = t.insert(1, 11);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*t.find(1), 11);
    EXPECT_EQ(t.size(), 2u);
}

TEST(FullyAssocLru, UnboundedNeverEvicts)
{
    FullyAssocLruTable<uint64_t, int> t(0);
    for (uint64_t i = 0; i < 10000; ++i)
        EXPECT_FALSE(t.insert(i, (int)i).has_value());
    EXPECT_EQ(t.size(), 10000u);
}

TEST(FullyAssocLru, EraseAndClear)
{
    FullyAssocLruTable<uint64_t, int> t(4);
    t.insert(1, 10);
    t.insert(2, 20);
    EXPECT_TRUE(t.erase(1));
    EXPECT_FALSE(t.erase(1));
    EXPECT_EQ(t.size(), 1u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
}

TEST(FullyAssocLru, ForEachVisitsMruFirst)
{
    FullyAssocLruTable<uint64_t, int> t(4);
    t.insert(1, 10);
    t.insert(2, 20);
    t.insert(3, 30);
    std::vector<uint64_t> order;
    t.forEach([&](uint64_t k, int &) { order.push_back(k); });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 3u);
    EXPECT_EQ(order[2], 1u);
}

// -------------------------------------------------------- set-assoc LRU

TEST(SetAssoc, ConflictsWithinSetOnly)
{
    // 8 entries, 2-way: 4 sets. Keys 0, 4, 8 map to set 0.
    SetAssocTable<int> t(8, 2);
    t.insert(0, 1);
    t.insert(4, 2);
    auto evicted = t.insert(8, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 0u);
    // Other sets unaffected.
    t.insert(1, 9);
    EXPECT_NE(t.find(1), nullptr);
    EXPECT_NE(t.find(4), nullptr);
    EXPECT_NE(t.find(8), nullptr);
}

TEST(SetAssoc, TouchPromotesWithinSet)
{
    SetAssocTable<int> t(8, 2);
    t.insert(0, 1);
    t.insert(4, 2);
    t.touch(0);
    auto evicted = t.insert(8, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 4u);
}

TEST(SetAssoc, FullKeyIsTag)
{
    SetAssocTable<int> t(8, 2);
    t.insert(0, 1);
    // Key 4 maps to the same set but must not alias.
    EXPECT_EQ(t.find(4), nullptr);
}

TEST(SetAssoc, SizeAndCapacity)
{
    SetAssocTable<int> t(16, 4);
    EXPECT_EQ(t.capacity(), 16u);
    EXPECT_EQ(t.numSets(), 4u);
    EXPECT_EQ(t.assoc(), 4u);
    for (uint64_t i = 0; i < 10; ++i)
        t.insert(i, 0);
    EXPECT_EQ(t.size(), 10u);
}

TEST(SetAssoc, EraseFromSet)
{
    SetAssocTable<int> t(8, 2);
    t.insert(0, 1);
    EXPECT_TRUE(t.erase(0));
    EXPECT_FALSE(t.erase(0));
    EXPECT_EQ(t.find(0), nullptr);
}

TEST(SetAssoc, FullyAssocWhenOneSet)
{
    SetAssocTable<int> t(4, 4);
    EXPECT_EQ(t.numSets(), 1u);
    t.insert(100, 1);
    t.insert(200, 2);
    t.insert(300, 3);
    t.insert(400, 4);
    auto evicted = t.insert(500, 5);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 100u);
}

// ---------------------------------------------------------- hybrid table

TEST(HybridTable, UnboundedMode)
{
    HybridTable<int> t({0, 0});
    for (uint64_t i = 0; i < 1000; ++i)
        t.insert(i, (int)i);
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_EQ(*t.find(999), 999);
}

TEST(HybridTable, FullyAssocMode)
{
    HybridTable<int> t({4, 0});
    for (uint64_t i = 0; i < 8; ++i)
        t.insert(i, (int)i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.find(0), nullptr);
    EXPECT_NE(t.find(7), nullptr);
}

TEST(HybridTable, SetAssocMode)
{
    HybridTable<int> t({8, 2});
    t.insert(0, 1);
    t.insert(4, 2);
    t.insert(8, 3); // evicts key 0 from set 0
    EXPECT_EQ(t.find(0), nullptr);
    EXPECT_NE(t.find(8), nullptr);
}

TEST(HybridTable, EraseAllModes)
{
    for (TableGeometry g :
         {TableGeometry{0, 0}, TableGeometry{8, 0}, TableGeometry{8, 2}}) {
        HybridTable<int> t(g);
        t.insert(3, 33);
        EXPECT_TRUE(t.erase(3));
        EXPECT_EQ(t.find(3), nullptr);
    }
}

TEST(HybridTable, ForEachAllModes)
{
    for (TableGeometry g :
         {TableGeometry{0, 0}, TableGeometry{8, 0}, TableGeometry{8, 2}}) {
        HybridTable<int> t(g);
        t.insert(1, 1);
        t.insert(2, 2);
        std::set<uint64_t> keys;
        t.forEach([&](uint64_t k, int &) { keys.insert(k); });
        EXPECT_EQ(keys.size(), 2u);
    }
}

// ------------------------------------------------------------------ stats

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(4, 10); // buckets [0,10) [10,20) [20,30) [30,40) + ovf
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(100);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 39 + 100) / 5.0, 1e-9);
}

TEST(Stats, HistogramReset)
{
    Histogram h(2, 5);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Stats, StatGroupDumpFormat)
{
    StatGroup group("cpu");
    Counter a, b;
    a += 3;
    b += 7;
    group.registerCounter("loads", &a);
    group.registerCounter("stores", &b);
    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "cpu.loads 3\ncpu.stores 7\n");
    group.reset();
    EXPECT_EQ(a.value(), 0u);
}

} // namespace
} // namespace rarpred
