/**
 * @file
 * WorkloadFactory + fuzzer test battery (DESIGN.md §8):
 *
 *  - determinism: (seed, params) -> byte-identical program listing
 *    and RecordedTrace, across repeated builds and across 1/4/8-worker
 *    runSweep(); distinct seeds -> distinct traces;
 *  - knob fidelity: the measured RAR-sharing fraction, store
 *    fraction, and conditional-branch taken-rate move monotonically
 *    with their knobs (src/analysis/ measurements);
 *  - cloaking sensitivity: default-config coverage rises
 *    monotonically with the RAR-sharing knob (the acceptance
 *    criterion bench_factory_sensitivity plots);
 *  - registry: "factory.*" presets and "factory.fuzz:SEED" dynamic
 *    cases resolve through lookupWorkload() without disturbing the
 *    18 paper workloads;
 *  - fuzzer: .case round-trips, the corpus under tests/corpus/
 *    replays green, a fixed-seed smoke fuzz runs the full oracle
 *    battery, and the minimizer shrinks a failing case.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/inst_mix.hh"
#include "analysis/locality.hh"
#include "core/cloaking.hh"
#include "driver/sim_snapshot.hh"
#include "driver/sweep.hh"
#include "vm/recorded_trace.hh"
#include "workload/factory.hh"
#include "workload/fuzz.hh"

#ifndef RARPRED_CORPUS_DIR
#error "build must define RARPRED_CORPUS_DIR"
#endif

namespace rarpred {
namespace {

constexpr uint64_t kTraceInsts = 60'000;

CloakingConfig
defaultCloakingConfig()
{
    CloakingConfig config;
    config.mode = CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.dpnt.confidence = ConfidenceKind::TwoBitAdaptive;
    config.sf = {1024, 2};
    return config;
}

bool
sameInst(const DynInst &a, const DynInst &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.nextPc == b.nextPc &&
           a.op == b.op && a.dst == b.dst && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.eaddr == b.eaddr &&
           a.value == b.value && a.taken == b.taken;
}

/** Record the trace of (seed, params) at the given budget. */
RecordedTrace
traceOf(uint64_t seed, const FactoryParams &p,
        uint64_t max_insts = kTraceInsts)
{
    const Program prog = buildFactoryProgram("t", seed, p);
    return RecordedTrace::record(prog, max_insts);
}

std::string
cloakingDump(const CloakingStats &s)
{
    std::ostringstream os;
    s.dump(os);
    return os.str();
}

// ------------------------------------------------------------------
// Parameter validation
// ------------------------------------------------------------------

TEST(FactoryParams, DefaultsValidate)
{
    EXPECT_TRUE(FactoryParams{}.validate().ok());
    for (const FactoryPreset &preset : factoryPresets())
        EXPECT_TRUE(preset.params.validate().ok()) << preset.name;
}

TEST(FactoryParams, RejectsOutOfRangeKnobs)
{
    FactoryParams p;
    p.rarSharing = 1.5;
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.storeIntervention = -0.1;
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.workingSetWords = 4; // below the floor
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.workingSetWords = 1ull << 20; // above the plan-word offset range
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.planEntries = 1ull << 20;
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.outerIters = 0;
    EXPECT_FALSE(p.validate().ok());
    p = {};
    p.depChainLength = 1000;
    EXPECT_FALSE(p.validate().ok());

    EXPECT_FALSE(makeFactoryWorkload("bad", 1, p).ok());
}

TEST(FactoryParams, AddressPickNamesRoundTrip)
{
    for (AddressPick pick :
         {AddressPick::Sequential, AddressPick::Strided,
          AddressPick::Shuffled, AddressPick::Pooled}) {
        const auto parsed = parseAddressPick(addressPickName(pick));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(*parsed, pick);
    }
    EXPECT_FALSE(parseAddressPick("zigzag").ok());
}

TEST(FactoryParams, FingerprintSeparatesKnobs)
{
    const FactoryParams base;
    for (auto mutate : std::vector<void (*)(FactoryParams &)>{
             [](FactoryParams &p) { p.rarSharing = 0.25; },
             [](FactoryParams &p) { p.storeIntervention = 0.25; },
             [](FactoryParams &p) { p.chaseDepth = 3; },
             [](FactoryParams &p) { p.workingSetWords = 512; },
             [](FactoryParams &p) { p.branchEntropy = 0.25; },
             [](FactoryParams &p) { p.depChainLength = 7; },
             [](FactoryParams &p) {
                 p.addrPick = AddressPick::Strided;
             },
             [](FactoryParams &p) { p.planEntries = 128; },
             [](FactoryParams &p) { p.accessesPerCall = 32; },
             [](FactoryParams &p) { p.outerIters = 77; },
             [](FactoryParams &p) { p.fpData = true; }}) {
        FactoryParams mutated = base;
        mutate(mutated);
        EXPECT_NE(base.fingerprint(), mutated.fingerprint());
    }
}

// ------------------------------------------------------------------
// Determinism properties (satellite 1)
// ------------------------------------------------------------------

TEST(FactoryDeterminism, SameSeedSameParamsByteIdenticalTrace)
{
    for (const FactoryPreset &preset :
         {factoryPresets()[0], factoryPresets()[5]}) {
        const Program p1 =
            buildFactoryProgram(preset.name, preset.seed, preset.params);
        const Program p2 =
            buildFactoryProgram(preset.name, preset.seed, preset.params);
        ASSERT_EQ(p1.listing(), p2.listing()) << preset.name;

        const RecordedTrace t1 = RecordedTrace::record(p1, kTraceInsts);
        const RecordedTrace t2 = RecordedTrace::record(p2, kTraceInsts);
        ASSERT_EQ(t1.size(), t2.size()) << preset.name;
        ASSERT_GT(t1.size(), 10'000u) << preset.name;
        for (size_t i = 0; i < t1.size(); ++i)
            ASSERT_TRUE(sameInst(t1.decode(i), t2.decode(i)))
                << preset.name << " record " << i;
    }
}

TEST(FactoryDeterminism, DistinctSeedsDistinctTraces)
{
    const FactoryParams p; // defaults
    const RecordedTrace t1 = traceOf(11, p, 20'000);
    const RecordedTrace t2 = traceOf(12, p, 20'000);
    ASSERT_FALSE(t1.empty());
    ASSERT_FALSE(t2.empty());
    bool differs = t1.size() != t2.size();
    for (size_t i = 0; !differs && i < t1.size(); ++i)
        differs = !sameInst(t1.decode(i), t2.decode(i));
    EXPECT_TRUE(differs)
        << "different seeds produced identical traces";
}

TEST(FactoryDeterminism, SweepStatsWorkerCountInvariant)
{
    // The full preset list through a real cloaking sweep: merged
    // stats must be byte-identical for 1, 4 and 8 workers and match
    // a serial replay of the same traces.
    std::vector<const Workload *> workloads;
    for (const Workload &w : factoryPresetWorkloads())
        workloads.push_back(&w);

    std::vector<std::string> dumps;
    for (unsigned workers : {1u, 4u, 8u}) {
        driver::RunnerConfig rc;
        rc.workers = workers;
        rc.maxInsts = kTraceInsts;
        driver::SimJobRunner runner(rc);
        auto cells = driver::runSweep(
            runner, workloads, 1,
            [](const Workload &, size_t, TraceSource &trace, Rng &) {
                CloakingEngine engine(defaultCloakingConfig());
                driver::pumpSimulation(trace, engine);
                return engine.stats();
            });
        ASSERT_TRUE(cells.status.ok()) << cells.status.toString();
        std::string dump;
        for (size_t i = 0; i < cells.size(); ++i)
            dump += cloakingDump(cells[i]);
        dumps.push_back(std::move(dump));
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);

    // Serial reference: same traces, no driver.
    std::string serial;
    for (const Workload *w : workloads) {
        const RecordedTrace trace =
            RecordedTrace::record(w->build(1), kTraceInsts);
        CloakingEngine engine(defaultCloakingConfig());
        trace.replayInto(engine);
        serial += cloakingDump(engine.stats());
    }
    EXPECT_EQ(serial, dumps[0]);
}

// ------------------------------------------------------------------
// Knob fidelity (satellite 2)
// ------------------------------------------------------------------

/** Counts conditional-branch executions and how many were taken. */
class BranchTakenCounter : public TraceSink
{
  public:
    void
    onInst(const DynInst &di) override
    {
        if (!di.isCondBranch())
            return;
        ++branches_;
        if (di.taken)
            ++taken_;
    }

    double
    takenFraction() const
    {
        return branches_ == 0 ? 0.0 : (double)taken_ / branches_;
    }

  private:
    uint64_t branches_ = 0;
    uint64_t taken_ = 0;
};

TEST(FactoryKnobs, RarSharingDrivesMeasuredRarFraction)
{
    // Large sequential working set: the only short-distance re-read
    // of a pool word is the knob-injected site-B load, so the
    // measured RAR-sink fraction must track the knob.
    FactoryParams p;
    p.addrPick = AddressPick::Sequential;
    p.workingSetWords = 4096;
    p.planEntries = 4096;
    p.storeIntervention = 0.05;
    p.branchEntropy = 0.3;

    std::vector<double> fraction;
    for (double knob : {0.1, 0.5, 0.9}) {
        p.rarSharing = knob;
        RarLocalityAnalyzer rar(/*window_entries=*/0);
        traceOf(5, p, 120'000).replayInto(rar);
        ASSERT_GT(rar.totalLoads(), 0u);
        fraction.push_back((double)rar.sinkExecutions() /
                           (double)rar.totalLoads());
    }
    EXPECT_LT(fraction[0], fraction[1]);
    EXPECT_LT(fraction[1], fraction[2]);
}

TEST(FactoryKnobs, StoreInterventionDrivesStoreFraction)
{
    FactoryParams p;
    p.addrPick = AddressPick::Pooled;

    std::vector<double> store_frac;
    std::vector<double> rar_frac;
    for (double knob : {0.0, 0.4, 0.8}) {
        p.storeIntervention = knob;
        InstMixCounter mix;
        RarLocalityAnalyzer rar(/*window_entries=*/0);
        TeeSink tee{&mix, &rar};
        traceOf(6, p, 120'000).replayInto(tee);
        ASSERT_GT(mix.total(), 0u);
        store_frac.push_back(mix.storeFraction());
        rar_frac.push_back((double)rar.sinkExecutions() /
                           (double)rar.totalLoads());
    }
    // More interventions -> more stores...
    EXPECT_LT(store_frac[0], store_frac[1]);
    EXPECT_LT(store_frac[1], store_frac[2]);
    // ...and fewer surviving RAR chains (stores cut them).
    EXPECT_GT(rar_frac[0], rar_frac[1]);
    EXPECT_GT(rar_frac[1], rar_frac[2]);
}

TEST(FactoryKnobs, BranchEntropyDrivesTakenRate)
{
    // The plan's branch bit is set with probability entropy/2 and
    // guarded by a beq-skip, so the aggregate conditional taken
    // fraction falls strictly as entropy rises (all other branch
    // sites are held fixed).
    FactoryParams p;
    std::vector<double> taken;
    for (double knob : {0.0, 0.5, 1.0}) {
        p.branchEntropy = knob;
        BranchTakenCounter branches;
        traceOf(7, p, 120'000).replayInto(branches);
        taken.push_back(branches.takenFraction());
    }
    EXPECT_GT(taken[0], taken[1]);
    EXPECT_GT(taken[1], taken[2]);
}

TEST(FactoryKnobs, CloakingCoverageMonotoneInRarSharing)
{
    // The acceptance criterion bench_factory_sensitivity emits:
    // default-mechanism coverage must rise monotonically with the
    // RAR-sharing knob.
    FactoryParams p;
    p.addrPick = AddressPick::Pooled;
    p.workingSetWords = 128;
    p.storeIntervention = 0.02;

    std::vector<double> coverage;
    for (double knob : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        p.rarSharing = knob;
        CloakingEngine engine(defaultCloakingConfig());
        traceOf(8, p, 120'000).replayInto(engine);
        coverage.push_back(engine.stats().coverage());
    }
    for (size_t i = 1; i < coverage.size(); ++i)
        EXPECT_GE(coverage[i], coverage[i - 1])
            << "coverage dipped between rarSharing point " << i - 1
            << " and " << i;
    EXPECT_GT(coverage.back(), coverage.front());
}

// ------------------------------------------------------------------
// Registry integration
// ------------------------------------------------------------------

TEST(FactoryRegistry, PresetsResolveWithoutDisturbingThePaperSuite)
{
    ASSERT_EQ(allWorkloads().size(), 18u);
    ASSERT_EQ(factoryPresets().size(), 6u);
    ASSERT_EQ(factoryPresetWorkloads().size(), 6u);

    for (size_t i = 0; i < factoryPresets().size(); ++i) {
        const auto found =
            lookupWorkload(factoryPresets()[i].name);
        ASSERT_TRUE(found.ok()) << factoryPresets()[i].name;
        EXPECT_EQ(*found, &factoryPresetWorkloads()[i]);
        EXPECT_EQ((*found)->isFp,
                  factoryPresets()[i].params.fpData);
    }
    EXPECT_FALSE(lookupWorkload("factory.no_such_preset").ok());
}

TEST(FactoryRegistry, FuzzNamesResolveDynamically)
{
    const auto first = lookupWorkload("factory.fuzz:42");
    ASSERT_TRUE(first.ok());
    const auto again = lookupWorkload("factory.fuzz:42");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*first, *again) << "dynamic lookups must be memoized";

    const RecordedTrace trace =
        RecordedTrace::record((*first)->build(1), 5'000);
    EXPECT_EQ(trace.size(), 5'000u);

    EXPECT_FALSE(lookupWorkload("factory.fuzz:").ok());
    EXPECT_FALSE(lookupWorkload("factory.fuzz:notanumber").ok());
}

// ------------------------------------------------------------------
// Fuzzer: case format, corpus, smoke fuzz, minimizer
// ------------------------------------------------------------------

TEST(FactoryFuzz, CaseFormatRoundTrips)
{
    const FuzzCase drawn = drawFuzzCase(7);
    const auto parsed = parseFuzzCase(formatFuzzCase(drawn));
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->seed, drawn.seed);
    EXPECT_EQ(parsed->maxInsts, drawn.maxInsts);
    EXPECT_EQ(parsed->params.fingerprint(),
              drawn.params.fingerprint());
    EXPECT_EQ(fuzzCaseName(*parsed), fuzzCaseName(drawn));
}

TEST(FactoryFuzz, ParserRejectsMalformedCases)
{
    EXPECT_FALSE(parseFuzzCase("").ok());       // missing seed
    EXPECT_FALSE(parseFuzzCase("seed").ok());   // no '='
    EXPECT_FALSE(parseFuzzCase("seed=x").ok()); // bad number
    EXPECT_FALSE(parseFuzzCase("seed=1\nwombat=3").ok());
    EXPECT_FALSE(parseFuzzCase("seed=1\naddrPick=zigzag").ok());
    EXPECT_FALSE(parseFuzzCase("seed=1\nrarSharing=2.0").ok());
    EXPECT_FALSE(parseFuzzCase("seed=1\nmaxInsts=10").ok());
    EXPECT_TRUE(
        parseFuzzCase("# comment\n\nseed=1\n").ok());
}

TEST(FactoryFuzz, DrawnCasesAreValidAndDiverse)
{
    bool saw_fp = false, saw_chase = false;
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        const FuzzCase c = drawFuzzCase(seed);
        EXPECT_TRUE(c.params.validate().ok()) << "seed " << seed;
        saw_fp |= c.params.fpData;
        saw_chase |= c.params.chaseDepth > 0;
    }
    EXPECT_TRUE(saw_fp);
    EXPECT_TRUE(saw_chase);
}

TEST(FactoryFuzz, CorpusReplaysGreen)
{
    // Every checked-in reproducer must parse and pass the full
    // battery — deterministically. A failure here means a regression
    // an earlier fuzz run already caught once.
    namespace fs = std::filesystem;
    std::vector<fs::path> cases;
    for (const auto &entry : fs::directory_iterator(RARPRED_CORPUS_DIR))
        if (entry.path().extension() == ".case")
            cases.push_back(entry.path());
    ASSERT_FALSE(cases.empty())
        << "no .case files under " << RARPRED_CORPUS_DIR;

    for (const fs::path &path : cases) {
        std::ifstream is(path);
        ASSERT_TRUE(is.good()) << path;
        std::stringstream buf;
        buf << is.rdbuf();
        const auto c = parseFuzzCase(buf.str());
        ASSERT_TRUE(c.ok())
            << path << ": " << c.status().toString();
        const FuzzVerdict v = checkFuzzCase(*c);
        EXPECT_TRUE(v.passed)
            << path << " failed: " << v.failure;
        EXPECT_GT(v.instructions, 0u);
    }
}

TEST(FactoryFuzz, FixedSeedSmokeFuzz)
{
    // The tier-1 slice of the nightly job: a handful of fixed seeds
    // through the full determinism + oracle + sweep battery, capped
    // small enough to stay inside the tier-1 budget.
    for (uint64_t seed : {1001ull, 1002ull, 1003ull, 1004ull}) {
        FuzzCase c = drawFuzzCase(seed);
        c.maxInsts = std::min<uint64_t>(c.maxInsts, 30'000);
        const FuzzVerdict v = checkFuzzCase(c);
        EXPECT_TRUE(v.passed)
            << "seed " << seed << " failed: " << v.failure << "\n"
            << formatFuzzCase(c);
    }
}

TEST(FactoryFuzz, MinimizerShrinksWhileFailurePersists)
{
    FuzzCase big = drawFuzzCase(99);
    big.params.workingSetWords = 4096;
    big.params.planEntries = 1024;
    big.params.outerIters = 400;
    big.params.chaseDepth = 64;

    // Synthetic failure: anything with a working set >= 64 words
    // "fails". The minimizer must walk ws down to exactly the
    // predicate floor and flatten every other axis it can.
    auto still_fails = [](const FuzzCase &c) {
        return c.params.workingSetWords >= 64;
    };
    unsigned shrinks = 0;
    const FuzzCase small =
        minimizeFuzzCase(big, still_fails, &shrinks);

    EXPECT_TRUE(still_fails(small));
    EXPECT_EQ(small.params.workingSetWords, 64u);
    EXPECT_GT(shrinks, 0u);
    EXPECT_EQ(small.params.outerIters, 1u);
    EXPECT_EQ(small.params.planEntries, 16u);
    EXPECT_EQ(small.params.chaseDepth, 0u);
    EXPECT_TRUE(small.params.validate().ok());
}

} // namespace
} // namespace rarpred
