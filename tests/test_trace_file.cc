/**
 * @file
 * Tests for the binary trace file writer/reader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "vm/micro_vm.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "rarpred_trace_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".rar";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

DynInst
sample(uint64_t seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = 0x100 + seq * 4;
    di.nextPc = di.pc + 4;
    di.op = seq % 3 == 0 ? Opcode::Lw : Opcode::Add;
    di.dst = (RegId)(seq % 30 + 1);
    di.src1 = 2;
    di.src2 = 3;
    di.eaddr = 0x8000 + seq * 8;
    di.value = seq * 17;
    di.taken = seq % 5 == 0;
    return di;
}

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 100; ++i)
            writer.onInst(sample(i));
        writer.finish();
        EXPECT_EQ(writer.recordsWritten(), 100u);
    }
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.totalRecords(), 100u);
    DynInst di;
    for (uint64_t i = 0; i < 100; ++i) {
        ASSERT_TRUE(reader.next(di));
        DynInst want = sample(i);
        EXPECT_EQ(di.seq, want.seq);
        EXPECT_EQ(di.pc, want.pc);
        EXPECT_EQ(di.nextPc, want.nextPc);
        EXPECT_EQ(di.op, want.op);
        EXPECT_EQ(di.dst, want.dst);
        EXPECT_EQ(di.src1, want.src1);
        EXPECT_EQ(di.src2, want.src2);
        EXPECT_EQ(di.eaddr, want.eaddr);
        EXPECT_EQ(di.value, want.value);
        EXPECT_EQ(di.taken, want.taken);
    }
    EXPECT_FALSE(reader.next(di));
}

TEST_F(TraceFileTest, RewindReplays)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 10; ++i)
            writer.onInst(sample(i));
    } // destructor finishes
    TraceFileReader reader(path_);
    DynInst di;
    while (reader.next(di)) {
    }
    reader.rewind();
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.seq, 0u);
}

TEST_F(TraceFileTest, EmptyTrace)
{
    {
        TraceFileWriter writer(path_);
        writer.finish();
    }
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.totalRecords(), 0u);
    DynInst di;
    EXPECT_FALSE(reader.next(di));
}

TEST_F(TraceFileTest, PumpTraceMovesEverything)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 50; ++i)
            writer.onInst(sample(i));
    }
    TraceFileReader reader(path_);
    class Counter : public TraceSink
    {
      public:
        uint64_t n = 0;
        void onInst(const DynInst &) override { ++n; }
    } counter;
    EXPECT_EQ(pumpTrace(reader, counter), 50u);
    EXPECT_EQ(counter.n, 50u);
}

TEST_F(TraceFileTest, WorkloadTraceRoundTrip)
{
    // Record a real workload and replay it; the replay must be
    // byte-identical to a fresh run.
    Program p = findWorkload("com").build(1);
    {
        MicroVM vm(p);
        TraceFileWriter writer(path_);
        vm.run(writer, 200'000);
    }
    TraceFileReader reader(path_);
    MicroVM vm(p);
    DynInst a, b;
    uint64_t n = 0;
    while (reader.next(a)) {
        ASSERT_TRUE(vm.next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.eaddr, b.eaddr);
        ASSERT_EQ(a.value, b.value);
        ++n;
    }
    EXPECT_EQ(n, 200'000u);
}

} // namespace
} // namespace rarpred
