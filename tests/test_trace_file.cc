/**
 * @file
 * Tests for the binary trace file writer/reader: round-trip fidelity,
 * and the v2 format's integrity machinery — header checksum,
 * per-record CRC-32, field validation, truncation detection, and the
 * opt-in skip-and-resync recovery mode.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/stats.hh"
#include "vm/micro_vm.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), (std::streamsize)bytes.size());
}

// v2 on-disk layout constants, asserted against the library so these
// tests fail loudly if the format shifts under them.
constexpr uint64_t kHdr = 32;     // header bytes
constexpr uint64_t kRec = 56;     // record bytes (48 payload + crc + pad)
constexpr uint64_t kPayload = 48; // checksummed payload bytes

/** Byte offset of record @p i in a v2 trace file. */
uint64_t
recOffset(uint64_t i)
{
    return kHdr + i * kRec;
}

/** Patch one payload byte of record @p i and refresh its CRC, so the
 *  damage is CRC-clean and only field validation can catch it. */
void
patchPayloadWithValidCrc(std::vector<char> &bytes, uint64_t i,
                         uint64_t field_offset, char value)
{
    char *payload = bytes.data() + recOffset(i);
    payload[field_offset] = value;
    const uint32_t crc = crc32(payload, kPayload);
    std::memcpy(payload + kPayload, &crc, sizeof(crc));
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "rarpred_trace_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".rar";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

DynInst
sample(uint64_t seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = 0x100 + seq * 4;
    di.nextPc = di.pc + 4;
    di.op = seq % 3 == 0 ? Opcode::Lw : Opcode::Add;
    di.dst = (RegId)(seq % 30 + 1);
    di.src1 = 2;
    di.src2 = 3;
    di.eaddr = 0x8000 + seq * 8;
    di.value = seq * 17;
    di.taken = seq % 5 == 0;
    return di;
}

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 100; ++i)
            writer.onInst(sample(i));
        writer.finish();
        EXPECT_EQ(writer.recordsWritten(), 100u);
    }
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.totalRecords(), 100u);
    DynInst di;
    for (uint64_t i = 0; i < 100; ++i) {
        ASSERT_TRUE(reader.next(di));
        DynInst want = sample(i);
        EXPECT_EQ(di.seq, want.seq);
        EXPECT_EQ(di.pc, want.pc);
        EXPECT_EQ(di.nextPc, want.nextPc);
        EXPECT_EQ(di.op, want.op);
        EXPECT_EQ(di.dst, want.dst);
        EXPECT_EQ(di.src1, want.src1);
        EXPECT_EQ(di.src2, want.src2);
        EXPECT_EQ(di.eaddr, want.eaddr);
        EXPECT_EQ(di.value, want.value);
        EXPECT_EQ(di.taken, want.taken);
    }
    EXPECT_FALSE(reader.next(di));
}

TEST_F(TraceFileTest, RewindReplays)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 10; ++i)
            writer.onInst(sample(i));
    } // destructor finishes
    TraceFileReader reader(path_);
    DynInst di;
    while (reader.next(di)) {
    }
    reader.rewind();
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.seq, 0u);
}

TEST_F(TraceFileTest, EmptyTrace)
{
    {
        TraceFileWriter writer(path_);
        writer.finish();
    }
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.totalRecords(), 0u);
    DynInst di;
    EXPECT_FALSE(reader.next(di));
}

TEST_F(TraceFileTest, PumpTraceMovesEverything)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 50; ++i)
            writer.onInst(sample(i));
    }
    TraceFileReader reader(path_);
    class Counter : public TraceSink
    {
      public:
        uint64_t n = 0;
        void onInst(const DynInst &) override { ++n; }
    } counter;
    EXPECT_EQ(pumpTrace(reader, counter), 50u);
    EXPECT_EQ(counter.n, 50u);
}

TEST_F(TraceFileTest, LayoutConstantsMatchLibrary)
{
    EXPECT_EQ(traceHeaderBytes(), kHdr);
    EXPECT_EQ(traceRecordBytes(), kRec);
    EXPECT_EQ(traceHeaderBytes(1), 24u);
    EXPECT_EQ(traceRecordBytes(1), 48u);
}

TEST_F(TraceFileTest, FinishReportsSuccess)
{
    TraceFileWriter writer(path_);
    writer.onInst(sample(0));
    EXPECT_TRUE(writer.finish().ok());
    EXPECT_TRUE(writer.status().ok());
}

TEST_F(TraceFileTest, WriteFailureIsDetectedNotSilent)
{
    // /dev/full accepts the open but fails every flush with ENOSPC —
    // exactly the "disk fills up mid-recording" scenario.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    TraceFileWriter writer("/dev/full");
    for (uint64_t i = 0; i < 100'000 && writer.status().ok(); ++i)
        writer.onInst(sample(i));
    Status s = writer.finish();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::IoError);
}

TEST_F(TraceFileTest, FlippedPayloadByteFailsRecordCrc)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 20; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    bytes[recOffset(7) + 16] ^= 0x10; // one bit of record 7's nextPc
    writeAll(path_, bytes);

    TraceFileReader reader(path_);
    ASSERT_TRUE(reader.status().ok());
    DynInst di;
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(reader.next(di));
    EXPECT_FALSE(reader.next(di)); // stops at the damaged record
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
    EXPECT_EQ(reader.stats().corruptionsDetected.value(), 1u);
}

TEST_F(TraceFileTest, ResyncSkipsCorruptRecordsAndCounts)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 50; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    bytes[recOffset(3) + 0] ^= 0x01;  // damage record 3
    bytes[recOffset(31) + 8] ^= 0x80; // and record 31
    writeAll(path_, bytes);

    TraceFileReader::Options options;
    options.resyncOnCorruption = true;
    TraceFileReader reader(path_, options);
    ASSERT_TRUE(reader.status().ok());
    DynInst di;
    uint64_t seen = 0;
    uint64_t sum_seq = 0;
    while (reader.next(di)) {
        ++seen;
        sum_seq += di.seq;
    }
    EXPECT_TRUE(reader.status().ok()); // recovered; clean end of stream
    EXPECT_EQ(seen, 48u);
    // Exactly records 3 and 31 are missing from the seq sum.
    EXPECT_EQ(sum_seq, 50u * 49u / 2 - 3 - 31);
    EXPECT_EQ(reader.stats().corruptionsDetected.value(), 2u);
    EXPECT_EQ(reader.stats().recordsSkipped.value(), 2u);
}

TEST_F(TraceFileTest, TruncatedFileIsDetected)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 20; ++i)
            writer.onInst(sample(i));
    }
    // Chop the file mid-record 10.
    std::filesystem::resize_file(path_, recOffset(10) + 13);

    TraceFileReader reader(path_);
    ASSERT_TRUE(reader.status().ok());
    DynInst di;
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(reader.next(di));
    EXPECT_FALSE(reader.next(di));
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("truncated"),
              std::string::npos);
    EXPECT_EQ(reader.stats().truncatedBytes.value(), kRec - 13);
}

TEST_F(TraceFileTest, TruncationStopsEvenInResyncMode)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 20; ++i)
            writer.onInst(sample(i));
    }
    std::filesystem::resize_file(path_, recOffset(15));

    TraceFileReader::Options options;
    options.resyncOnCorruption = true;
    TraceFileReader reader(path_, options);
    DynInst di;
    uint64_t seen = 0;
    while (reader.next(di))
        ++seen;
    EXPECT_EQ(seen, 15u);
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
}

TEST_F(TraceFileTest, HeaderChecksumCatchesCountTampering)
{
    {
        TraceFileWriter writer(path_);
        writer.onInst(sample(0));
    }
    auto bytes = readAll(path_);
    bytes[16] ^= 0x02; // the record-count field, within CRC coverage
    writeAll(path_, bytes);

    auto reader = TraceFileReader::open(path_);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("checksum"),
              std::string::npos);
}

TEST_F(TraceFileTest, WrongMagicIsRejected)
{
    {
        TraceFileWriter writer(path_);
        writer.onInst(sample(0));
    }
    auto bytes = readAll(path_);
    bytes[0] ^= 0xff;
    writeAll(path_, bytes);

    auto reader = TraceFileReader::open(path_);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("not a rarpred trace"),
              std::string::npos);
}

TEST_F(TraceFileTest, UnsupportedVersionIsRejected)
{
    {
        TraceFileWriter writer(path_);
        writer.onInst(sample(0));
    }
    auto bytes = readAll(path_);
    bytes[8] = 99; // future format revision
    writeAll(path_, bytes);

    auto reader = TraceFileReader::open(path_);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(reader.status().message().find("version"),
              std::string::npos);
}

TEST_F(TraceFileTest, ZeroLengthFileIsRejected)
{
    writeAll(path_, {});
    auto reader = TraceFileReader::open(path_);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
}

TEST_F(TraceFileTest, InvalidOpcodeIsRejectedNotBlindCast)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 5; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    // Opcode byte sits at payload offset 40; give it an out-of-enum
    // value but a *valid* CRC, so only field validation can object.
    patchPayloadWithValidCrc(bytes, 2, 40, (char)0xee);
    writeAll(path_, bytes);

    TraceFileReader reader(path_);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    ASSERT_TRUE(reader.next(di));
    EXPECT_FALSE(reader.next(di));
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("illegal field"),
              std::string::npos);
    EXPECT_EQ(reader.stats().invalidRecords.value(), 1u);
    EXPECT_EQ(reader.stats().corruptionsDetected.value(), 0u);
}

TEST_F(TraceFileTest, InvalidRegisterIsRejected)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 5; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    patchPayloadWithValidCrc(bytes, 0, 41, (char)200); // dst register
    writeAll(path_, bytes);

    TraceFileReader::Options options;
    options.resyncOnCorruption = true;
    TraceFileReader reader(path_, options);
    DynInst di;
    uint64_t seen = 0;
    while (reader.next(di))
        ++seen;
    EXPECT_EQ(seen, 4u); // the bad record was skipped, not replayed
    EXPECT_EQ(reader.stats().invalidRecords.value(), 1u);
    EXPECT_EQ(reader.stats().recordsSkipped.value(), 1u);
}

TEST_F(TraceFileTest, VersionOneFilesAreStillReadable)
{
    // Hand-assemble a v1 file: 24-byte header, raw 48-byte records.
    std::vector<char> bytes(24 + 2 * 48, 0);
    const uint64_t magic = 0x52415254524143ull;
    const uint32_t version = 1;
    const uint64_t count = 2;
    std::memcpy(bytes.data(), &magic, 8);
    std::memcpy(bytes.data() + 8, &version, 4);
    std::memcpy(bytes.data() + 16, &count, 8);
    for (uint64_t i = 0; i < 2; ++i) {
        char *rec = bytes.data() + 24 + i * 48;
        DynInst di = sample(i);
        std::memcpy(rec + 0, &di.seq, 8);
        std::memcpy(rec + 8, &di.pc, 8);
        std::memcpy(rec + 16, &di.nextPc, 8);
        std::memcpy(rec + 24, &di.eaddr, 8);
        std::memcpy(rec + 32, &di.value, 8);
        rec[40] = (char)di.op;
        rec[41] = (char)di.dst;
        rec[42] = (char)di.src1;
        rec[43] = (char)di.src2;
        rec[44] = di.taken ? 1 : 0;
    }
    writeAll(path_, bytes);

    TraceFileReader reader(path_);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(reader.formatVersion(), 1u);
    EXPECT_EQ(reader.totalRecords(), 2u);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.pc, sample(0).pc);
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.value, sample(1).value);
    EXPECT_FALSE(reader.next(di));
    EXPECT_TRUE(reader.status().ok());
}

TEST_F(TraceFileTest, ReadStatsRegisterWithStatGroup)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 3; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    bytes[recOffset(1) + 4] ^= 0x40;
    writeAll(path_, bytes);

    TraceFileReader::Options options;
    options.resyncOnCorruption = true;
    TraceFileReader reader(path_, options);
    StatGroup group("trace");
    reader.stats().registerStats(group);
    DynInst di;
    while (reader.next(di)) {
    }
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("trace.corruptionsDetected 1"),
              std::string::npos);
    EXPECT_NE(os.str().find("trace.recordsSkipped 1"),
              std::string::npos);
}

TEST_F(TraceFileTest, RewindClearsLatchedErrorAndReplays)
{
    {
        TraceFileWriter writer(path_);
        for (uint64_t i = 0; i < 10; ++i)
            writer.onInst(sample(i));
    }
    auto bytes = readAll(path_);
    bytes[recOffset(9) + 2] ^= 0x08; // damage only the last record
    writeAll(path_, bytes);

    TraceFileReader reader(path_);
    DynInst di;
    uint64_t first_pass = 0;
    while (reader.next(di))
        ++first_pass;
    EXPECT_EQ(first_pass, 9u);
    EXPECT_FALSE(reader.status().ok());

    reader.rewind();
    EXPECT_TRUE(reader.status().ok());
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.seq, 0u);
}

TEST_F(TraceFileTest, WorkloadTraceRoundTrip)
{
    // Record a real workload and replay it; the replay must be
    // byte-identical to a fresh run.
    Program p = findWorkload("com").build(1);
    {
        MicroVM vm(p);
        TraceFileWriter writer(path_);
        vm.run(writer, 200'000);
    }
    TraceFileReader reader(path_);
    MicroVM vm(p);
    DynInst a, b;
    uint64_t n = 0;
    while (reader.next(a)) {
        ASSERT_TRUE(vm.next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.eaddr, b.eaddr);
        ASSERT_EQ(a.value, b.value);
        ++n;
    }
    EXPECT_EQ(n, 200'000u);
}

} // namespace
} // namespace rarpred
