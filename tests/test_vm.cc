/**
 * @file
 * Unit tests for the MicroVM functional executor: semantics of every
 * opcode, control flow, the trace records, and run bounds.
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "isa/program_builder.hh"
#include "vm/micro_vm.hh"

namespace rarpred {
namespace {

/** Collects the full trace of a program. */
class Collector : public TraceSink
{
  public:
    void onInst(const DynInst &di) override { trace.push_back(di); }
    std::vector<DynInst> trace;
};

/** Build, run to halt, and return final VM state + trace. */
std::vector<DynInst>
runProgram(ProgramBuilder &b, MicroVM **vm_out = nullptr)
{
    static std::vector<std::unique_ptr<Program>> programs;
    static std::vector<std::unique_ptr<MicroVM>> vms;
    programs.push_back(std::make_unique<Program>(b.build()));
    vms.push_back(std::make_unique<MicroVM>(*programs.back()));
    Collector c;
    vms.back()->run(c, 1'000'000);
    if (vm_out)
        *vm_out = vms.back().get();
    return c.trace;
}

TEST(MicroVM, IntArithmetic)
{
    ProgramBuilder b("t");
    b.li(1, 7);
    b.li(2, 3);
    b.add(3, 1, 2);
    b.sub(4, 1, 2);
    b.mul(5, 1, 2);
    b.div(6, 1, 2);
    b.and_(7, 1, 2);
    b.or_(8, 1, 2);
    b.xor_(9, 1, 2);
    b.slt(10, 2, 1);
    b.slt(11, 1, 2);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(3), 10u);
    EXPECT_EQ(vm->readReg(4), 4u);
    EXPECT_EQ(vm->readReg(5), 21u);
    EXPECT_EQ(vm->readReg(6), 2u);
    EXPECT_EQ(vm->readReg(7), 3u);
    EXPECT_EQ(vm->readReg(8), 7u);
    EXPECT_EQ(vm->readReg(9), 4u);
    EXPECT_EQ(vm->readReg(10), 1u);
    EXPECT_EQ(vm->readReg(11), 0u);
}

TEST(MicroVM, ImmediateForms)
{
    ProgramBuilder b("t");
    b.li(1, 12);
    b.addi(2, 1, -2);
    b.andi(3, 1, 5);
    b.ori(4, 1, 3);
    b.slti(5, 1, 13);
    b.slti(6, 1, 12);
    b.slli(7, 1, 2);
    b.srli(8, 1, 1);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(2), 10u);
    EXPECT_EQ(vm->readReg(3), 4u);
    EXPECT_EQ(vm->readReg(4), 15u);
    EXPECT_EQ(vm->readReg(5), 1u);
    EXPECT_EQ(vm->readReg(6), 0u);
    EXPECT_EQ(vm->readReg(7), 48u);
    EXPECT_EQ(vm->readReg(8), 6u);
}

TEST(MicroVM, DivByZeroYieldsZero)
{
    ProgramBuilder b("t");
    b.li(1, 9);
    b.div(2, 1, reg::kZero);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(2), 0u);
}

TEST(MicroVM, NegativeArithmeticIsSigned)
{
    ProgramBuilder b("t");
    b.li(1, -6);
    b.li(2, 2);
    b.div(3, 1, 2);
    b.slt(4, 1, 2);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ((int64_t)vm->readReg(3), -3);
    EXPECT_EQ(vm->readReg(4), 1u);
}

TEST(MicroVM, ZeroRegisterIsImmutable)
{
    ProgramBuilder b("t");
    b.li(reg::kZero, 99);
    b.add(1, reg::kZero, reg::kZero);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(reg::kZero), 0u);
    EXPECT_EQ(vm->readReg(1), 0u);
}

TEST(MicroVM, LoadStoreRoundTrip)
{
    ProgramBuilder b("t");
    uint64_t addr = b.allocWords(2);
    b.initWord(addr, 1234);
    b.li(1, (int64_t)addr);
    b.lw(2, 1, 0);
    b.addi(3, 2, 1);
    b.sw(1, 8, 3);
    b.lw(4, 1, 8);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(2), 1234u);
    EXPECT_EQ(vm->readReg(4), 1235u);
    EXPECT_EQ(vm->readWord(addr + 8), 1235u);
}

TEST(MicroVM, FpArithmetic)
{
    ProgramBuilder b("t");
    uint64_t addr = b.allocWords(2);
    b.initWordF(addr, 1.5);
    b.initWordF(addr + 8, 2.5);
    b.li(1, (int64_t)addr);
    b.lf(reg::fpReg(0), 1, 0);
    b.lf(reg::fpReg(1), 1, 8);
    b.faddd(reg::fpReg(2), reg::fpReg(0), reg::fpReg(1));
    b.fsubd(reg::fpReg(3), reg::fpReg(1), reg::fpReg(0));
    b.fmuld(reg::fpReg(4), reg::fpReg(0), reg::fpReg(1));
    b.fdivd(reg::fpReg(5), reg::fpReg(1), reg::fpReg(0));
    b.fcmpd(2, reg::fpReg(0), reg::fpReg(1));
    b.fcmpd(3, reg::fpReg(1), reg::fpReg(0));
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(vm->readReg(reg::fpReg(2))),
                     4.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(vm->readReg(reg::fpReg(3))),
                     1.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(vm->readReg(reg::fpReg(4))),
                     3.75);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(vm->readReg(reg::fpReg(5))),
                     2.5 / 1.5);
    EXPECT_EQ(vm->readReg(2), 1u);
    EXPECT_EQ(vm->readReg(3), 0u);
}

TEST(MicroVM, FcvtConvertsIntToDouble)
{
    ProgramBuilder b("t");
    b.li(1, -3);
    b.fcvt(reg::fpReg(0), 1);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(vm->readReg(reg::fpReg(0))),
                     -3.0);
}

TEST(MicroVM, BranchesTakenAndNotTaken)
{
    ProgramBuilder b("t");
    b.li(1, 1);
    b.li(2, 2);
    b.beq(1, 2, "skip1"); // not taken
    b.li(3, 10);
    b.label("skip1");
    b.bne(1, 2, "skip2"); // taken
    b.li(3, 20);          // skipped
    b.label("skip2");
    b.blt(1, 2, "skip3"); // taken
    b.li(4, 30);          // skipped
    b.label("skip3");
    b.bge(1, 2, "skip4"); // not taken
    b.li(5, 40);
    b.label("skip4");
    b.halt();
    MicroVM *vm = nullptr;
    auto trace = runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(3), 10u);
    EXPECT_EQ(vm->readReg(4), 0u);
    EXPECT_EQ(vm->readReg(5), 40u);
    // taken flags recorded in the trace
    int taken = 0;
    for (const auto &di : trace)
        if (di.isCondBranch() && di.taken)
            ++taken;
    EXPECT_EQ(taken, 2);
}

TEST(MicroVM, CallAndRet)
{
    ProgramBuilder b("t");
    b.call("f"); // 0
    b.li(2, 5);  // 1 (after return)
    b.halt();    // 2
    b.label("f");
    b.li(1, 9); // 3
    b.ret();    // 4
    MicroVM *vm = nullptr;
    auto trace = runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(1), 9u);
    EXPECT_EQ(vm->readReg(2), 5u);
    // call wrote the return address
    EXPECT_EQ(trace[0].nextPc, pcOfIndex(3));
    EXPECT_EQ(trace[2].op, Opcode::Ret);
    EXPECT_EQ(trace[2].nextPc, pcOfIndex(1));
}

TEST(MicroVM, StackPushPop)
{
    ProgramBuilder b("t");
    b.li(1, 77);
    b.push(1);
    b.li(1, 0);
    b.pop(2);
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(2), 77u);
    // SP restored to the top
    EXPECT_EQ(vm->readReg(reg::kSp), vm->memBytes());
}

TEST(MicroVM, TraceRecordsLoadsAndStores)
{
    ProgramBuilder b("t");
    uint64_t addr = b.allocWords(1);
    b.initWord(addr, 55);
    b.li(1, (int64_t)addr);
    b.lw(2, 1, 0);
    b.sw(1, 0, 2);
    b.halt();
    auto trace = runProgram(b);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_TRUE(trace[1].isLoad());
    EXPECT_EQ(trace[1].eaddr, addr);
    EXPECT_EQ(trace[1].value, 55u);
    EXPECT_TRUE(trace[2].isStore());
    EXPECT_EQ(trace[2].eaddr, addr);
    EXPECT_EQ(trace[2].value, 55u);
}

TEST(MicroVM, SeqAndPcAreSequential)
{
    ProgramBuilder b("t");
    b.nop();
    b.nop();
    b.halt();
    auto trace = runProgram(b);
    ASSERT_EQ(trace.size(), 3u);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].seq, i);
        EXPECT_EQ(trace[i].pc, pcOfIndex(i));
    }
    EXPECT_EQ(trace[0].nextPc, pcOfIndex(1));
}

TEST(MicroVM, RunRespectsMaxInsts)
{
    ProgramBuilder b("t");
    b.label("loop");
    b.jump("loop"); // infinite
    Program p = b.build();
    MicroVM vm(p);
    EXPECT_EQ(vm.run(100), 100u);
    EXPECT_FALSE(vm.halted());
}

TEST(MicroVM, HaltStopsExecution)
{
    ProgramBuilder b("t");
    b.halt();
    b.nop(); // unreachable
    Program p = b.build();
    MicroVM vm(p);
    EXPECT_EQ(vm.run(100), 1u);
    EXPECT_TRUE(vm.halted());
    DynInst di;
    EXPECT_FALSE(vm.next(di));
}

TEST(MicroVM, InitialDataApplied)
{
    ProgramBuilder b("t");
    uint64_t addr = b.allocWords(3);
    b.initWord(addr, 1);
    b.initWord(addr + 16, 3);
    b.halt();
    Program p = b.build();
    MicroVM vm(p);
    EXPECT_EQ(vm.readWord(addr), 1u);
    EXPECT_EQ(vm.readWord(addr + 8), 0u);
    EXPECT_EQ(vm.readWord(addr + 16), 3u);
}

TEST(MicroVM, MovAndFmov)
{
    ProgramBuilder b("t");
    b.li(1, 42);
    b.mov(2, 1);
    b.fcvt(reg::fpReg(0), 1);
    b.fmov(reg::fpReg(1), reg::fpReg(0));
    b.halt();
    MicroVM *vm = nullptr;
    runProgram(b, &vm);
    EXPECT_EQ(vm->readReg(2), 42u);
    EXPECT_EQ(vm->readReg(reg::fpReg(1)), vm->readReg(reg::fpReg(0)));
}

} // namespace
} // namespace rarpred
