/**
 * @file
 * Tests for the parallel sweep driver (src/driver): trace recording
 * fidelity, generate-once trace caching under concurrency, and —
 * the property the whole subsystem hangs on — byte-identical merged
 * sweep statistics for any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cloaking.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/stats_merger.hh"
#include "driver/sweep.hh"
#include "vm/micro_vm.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RARPRED_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RARPRED_UNDER_SANITIZER 1
#endif
#endif

namespace rarpred {
namespace {

// ------------------------------------------------ recorded traces

TEST(RecordedTrace, ReplayReproducesEveryDynInstField)
{
    const Workload &w = findWorkload("li");
    Program prog = w.build(1);
    const uint64_t kMax = 100'000;

    RecordedTrace trace = RecordedTrace::record(prog, kMax);
    ASSERT_EQ(trace.size(), kMax);

    MicroVM vm(prog);
    DynInst want;
    for (size_t i = 0; i < trace.size(); ++i) {
        ASSERT_TRUE(vm.next(want));
        const DynInst got = trace.decode(i);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.pc, want.pc);
        ASSERT_EQ(got.nextPc, want.nextPc);
        ASSERT_EQ(got.op, want.op);
        ASSERT_EQ(got.dst, want.dst);
        ASSERT_EQ(got.src1, want.src1);
        ASSERT_EQ(got.src2, want.src2);
        ASSERT_EQ(got.eaddr, want.eaddr);
        ASSERT_EQ(got.value, want.value);
        ASSERT_EQ(got.taken, want.taken);
    }
}

TEST(RecordedTrace, SourceRewindsAndDrains)
{
    const Workload &w = findWorkload("com");
    Program prog = w.build(1);
    RecordedTrace trace = RecordedTrace::record(prog, 5000);

    RecordedTraceSource source(trace);
    DynInst di;
    uint64_t n = 0;
    while (source.next(di))
        ++n;
    EXPECT_EQ(n, trace.size());
    EXPECT_FALSE(source.next(di));

    source.rewind();
    ASSERT_TRUE(source.next(di));
    EXPECT_EQ(di.seq, 0u);
}

// ---------------------------------------------------- trace cache

TEST(TraceCache, GeneratesEachWorkloadExactlyOnceUnderConcurrency)
{
    driver::TraceCache cache;
    const Workload &w = findWorkload("li");
    constexpr unsigned kThreads = 8;

    std::vector<std::shared_ptr<const RecordedTrace>> got(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { got[t] = cache.get(w, 1, 50'000); });
    for (auto &t : threads)
        t.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, kThreads - 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(got[0]->size(), 50'000u);
}

TEST(TraceCache, DistinctKeysGenerateSeparately)
{
    driver::TraceCache cache;
    const Workload &li = findWorkload("li");
    const Workload &com = findWorkload("com");

    auto a = cache.get(li, 1, 10'000);
    auto b = cache.get(com, 1, 10'000);
    auto c = cache.get(li, 1, 20'000); // same workload, longer cap
    auto a2 = cache.get(li, 1, 10'000);

    EXPECT_EQ(cache.stats().generations, 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(a.get(), a2.get());
    EXPECT_EQ(c->size(), 20'000u);
}

TEST(TraceCache, ClearDropsResidencyButNotOutstandingRefs)
{
    driver::TraceCache cache;
    auto trace = cache.get(findWorkload("li"), 1, 10'000);
    EXPECT_EQ(cache.stats().residentTraces, 1u);
    EXPECT_GT(cache.stats().residentBytes, 0u);
    cache.clear();
    EXPECT_EQ(cache.stats().residentTraces, 0u);
    EXPECT_EQ(trace->size(), 10'000u); // our ref stays valid
}

// ------------------------------------------------------- job seeds

TEST(JobSeed, StableAndSensitiveToBothInputs)
{
    const uint64_t s = driver::jobSeed("li", 0);
    EXPECT_EQ(s, driver::jobSeed("li", 0));
    EXPECT_NE(s, driver::jobSeed("li", 1));
    EXPECT_NE(s, driver::jobSeed("com", 0));
    EXPECT_NE(driver::jobSeed("li", 1), driver::jobSeed("com", 1));
}

// ------------------------------------------- sweep determinism

/**
 * A small but real sweep: 3 workloads × 3 DDT sizes through the
 * cloaking engine, merged stats recorded from the worker threads.
 * @return the canonical serialized table.
 */
std::string
runCloakingSweep(unsigned workers)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com"), &findWorkload("go")};
    const std::vector<size_t> ddt_sizes = {32, 128, 512};

    driver::RunnerConfig rc;
    rc.workers = workers;
    rc.maxInsts = 150'000;
    driver::SimJobRunner runner(rc);

    driver::StatsMerger merger(workloads.size() * ddt_sizes.size());
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        for (size_t ci = 0; ci < ddt_sizes.size(); ++ci)
            merger.setRowKey(wi * ddt_sizes.size() + ci,
                             workloads[wi]->abbrev + "/ddt" +
                                 std::to_string(ddt_sizes[ci]));

    driver::runSweep(
        runner, workloads, ddt_sizes.size(),
        [&](const Workload &w, size_t ci, TraceSource &trace, Rng &rng) {
            CloakingConfig config;
            config.ddt.entries = ddt_sizes[ci];
            CloakingEngine engine(config);
            drainTrace(trace, engine);

            // Exercise the per-job RNG so seeding feeds the output:
            // deterministic per job, not per worker.
            const uint64_t salt = rng.next();

            size_t wi = 0;
            while (workloads[wi]->abbrev != w.abbrev)
                ++wi;
            const size_t job = wi * ddt_sizes.size() + ci;
            const auto &s = engine.stats();
            merger.recordCount(job, "loads", s.loads);
            merger.recordCount(job, "coveredRaw", s.coveredRaw);
            merger.recordCount(job, "coveredRar", s.coveredRar);
            merger.recordCount(job, "detectedRaw", s.detectedRaw);
            merger.recordCount(job, "detectedRar", s.detectedRar);
            merger.recordCount(job, "rngSalt", salt);
            merger.record(job, "coverage", s.coverage());
            return 0;
        });

    return merger.serialize();
}

TEST(SweepDeterminism, MergedStatsAreByteIdenticalForAnyWorkerCount)
{
    const std::string serial = runCloakingSweep(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("li/ddt32.loads "), std::string::npos);
    EXPECT_NE(serial.find("total.loads "), std::string::npos);

    const std::string four = runCloakingSweep(4);
    const std::string eight = runCloakingSweep(8);
    EXPECT_EQ(serial, four);
    EXPECT_EQ(serial, eight);
}

TEST(SweepDeterminism, RepeatedRunsAreByteIdentical)
{
    EXPECT_EQ(runCloakingSweep(4), runCloakingSweep(4));
}

// ----------------------------------------------- runner plumbing

TEST(SimJobRunner, CountsJobsTracesAndTiming)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};

    driver::RunnerConfig rc;
    rc.workers = 4;
    rc.maxInsts = 20'000;
    driver::SimJobRunner runner(rc);
    EXPECT_EQ(runner.workers(), 4u);

    auto loads = driver::runSweep(
        runner, workloads, 3,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            DynInst di;
            uint64_t loads = 0;
            while (trace.next(di))
                loads += di.isLoad();
            return loads;
        });
    ASSERT_EQ(loads.size(), 6u);
    for (uint64_t l : loads)
        EXPECT_GT(l, 0u);

    // Each workload generated once, all other jobs were cache hits.
    const auto cs = runner.traceCache().stats();
    EXPECT_EQ(cs.generations, 2u);
    EXPECT_EQ(cs.hits, 4u);

    std::ostringstream os;
    runner.dumpStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("driver.jobsCompleted 6"), std::string::npos);
    EXPECT_NE(s.find("driver.sweepsRun 1"), std::string::npos);
    EXPECT_NE(s.find("driver.traceGenerations 2"), std::string::npos);
    EXPECT_NE(s.find("driver.jobMicrosTotal"), std::string::npos);
    EXPECT_NE(s.find("driver.queueMicrosTotal"), std::string::npos);
}

TEST(SimJobRunner, ZeroWorkersResolvesToHardwareConcurrency)
{
    driver::SimJobRunner runner(driver::RunnerConfig{});
    EXPECT_GE(runner.workers(), 1u);
}

// ------------------------------------------------ sweep speedup

/** Wall-clock one OoO sweep at the given worker count. */
double
timeOooSweep(unsigned workers)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};

    driver::RunnerConfig rc;
    rc.workers = workers;
    rc.maxInsts = 150'000;
    driver::SimJobRunner runner(rc);
    // Pre-generate traces so we time simulation, not generation.
    for (const Workload *w : workloads)
        runner.traceCache().get(*w, rc.scale, rc.maxInsts);

    const auto start = std::chrono::steady_clock::now();
    driver::runSweep(runner, workloads, 8,
                     [](const Workload &, size_t, TraceSource &trace,
                        Rng &) {
                         OooCpu cpu(CpuConfig{}, {});
                         drainTrace(trace, cpu);
                         return cpu.stats().cycles;
                     });
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

TEST(SweepSpeedup, FourWorkersBeatSerialByTwoX)
{
#ifdef RARPRED_UNDER_SANITIZER
    GTEST_SKIP() << "wall-clock ratios are not meaningful under "
                    "sanitizers";
#endif
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    // Best of two runs each, to damp scheduler noise.
    const double serial =
        std::min(timeOooSweep(1), timeOooSweep(1));
    const double parallel =
        std::min(timeOooSweep(4), timeOooSweep(4));
    EXPECT_GE(serial / parallel, 2.0)
        << "serial " << serial << "s, 4 workers " << parallel << "s";
}

} // namespace
} // namespace rarpred
