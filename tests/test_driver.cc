/**
 * @file
 * Tests for the parallel sweep driver (src/driver): trace recording
 * fidelity, generate-once trace caching under concurrency, and —
 * the property the whole subsystem hangs on — byte-identical merged
 * sweep statistics for any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cloaking.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/stats_merger.hh"
#include "driver/sweep.hh"
#include "driver/sweep_journal.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"
#include "vm/micro_vm.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RARPRED_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RARPRED_UNDER_SANITIZER 1
#endif
#endif

namespace rarpred {
namespace {

// ------------------------------------------------ recorded traces

TEST(RecordedTrace, ReplayReproducesEveryDynInstField)
{
    const Workload &w = findWorkload("li");
    Program prog = w.build(1);
    const uint64_t kMax = 100'000;

    RecordedTrace trace = RecordedTrace::record(prog, kMax);
    ASSERT_EQ(trace.size(), kMax);

    MicroVM vm(prog);
    DynInst want;
    for (size_t i = 0; i < trace.size(); ++i) {
        ASSERT_TRUE(vm.next(want));
        const DynInst got = trace.decode(i);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.pc, want.pc);
        ASSERT_EQ(got.nextPc, want.nextPc);
        ASSERT_EQ(got.op, want.op);
        ASSERT_EQ(got.dst, want.dst);
        ASSERT_EQ(got.src1, want.src1);
        ASSERT_EQ(got.src2, want.src2);
        ASSERT_EQ(got.eaddr, want.eaddr);
        ASSERT_EQ(got.value, want.value);
        ASSERT_EQ(got.taken, want.taken);
    }
}

TEST(RecordedTrace, SourceRewindsAndDrains)
{
    const Workload &w = findWorkload("com");
    Program prog = w.build(1);
    RecordedTrace trace = RecordedTrace::record(prog, 5000);

    RecordedTraceSource source(trace);
    DynInst di;
    uint64_t n = 0;
    while (source.next(di))
        ++n;
    EXPECT_EQ(n, trace.size());
    EXPECT_FALSE(source.next(di));

    source.rewind();
    ASSERT_TRUE(source.next(di));
    EXPECT_EQ(di.seq, 0u);
}

// ---------------------------------------------------- trace cache

TEST(TraceCache, GeneratesEachWorkloadExactlyOnceUnderConcurrency)
{
    driver::TraceCache cache;
    const Workload &w = findWorkload("li");
    constexpr unsigned kThreads = 8;

    std::vector<std::shared_ptr<const RecordedTrace>> got(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { got[t] = cache.get(w, 1, 50'000); });
    for (auto &t : threads)
        t.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, kThreads - 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(got[0]->size(), 50'000u);
}

TEST(TraceCache, DistinctKeysGenerateSeparately)
{
    driver::TraceCache cache;
    const Workload &li = findWorkload("li");
    const Workload &com = findWorkload("com");

    auto a = cache.get(li, 1, 10'000);
    auto b = cache.get(com, 1, 10'000);
    auto c = cache.get(li, 1, 20'000); // same workload, longer cap
    auto a2 = cache.get(li, 1, 10'000);

    EXPECT_EQ(cache.stats().generations, 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(a.get(), a2.get());
    EXPECT_EQ(c->size(), 20'000u);
}

TEST(TraceCache, ClearDropsResidencyButNotOutstandingRefs)
{
    driver::TraceCache cache;
    auto trace = cache.get(findWorkload("li"), 1, 10'000);
    EXPECT_EQ(cache.stats().residentTraces, 1u);
    EXPECT_GT(cache.stats().residentBytes, 0u);
    cache.clear();
    EXPECT_EQ(cache.stats().residentTraces, 0u);
    EXPECT_EQ(trace->size(), 10'000u); // our ref stays valid
}

// ------------------------------------------------------- job seeds

TEST(JobSeed, StableAndSensitiveToBothInputs)
{
    const uint64_t s = driver::jobSeed("li", 0);
    EXPECT_EQ(s, driver::jobSeed("li", 0));
    EXPECT_NE(s, driver::jobSeed("li", 1));
    EXPECT_NE(s, driver::jobSeed("com", 0));
    EXPECT_NE(driver::jobSeed("li", 1), driver::jobSeed("com", 1));
}

// ------------------------------------------- sweep determinism

/**
 * A small but real sweep: 3 workloads × 3 DDT sizes through the
 * cloaking engine, merged stats recorded from the worker threads.
 * @return the canonical serialized table.
 */
std::string
runCloakingSweep(unsigned workers)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com"), &findWorkload("go")};
    const std::vector<size_t> ddt_sizes = {32, 128, 512};

    driver::RunnerConfig rc;
    rc.workers = workers;
    rc.maxInsts = 150'000;
    driver::SimJobRunner runner(rc);

    driver::StatsMerger merger(workloads.size() * ddt_sizes.size());
    for (size_t wi = 0; wi < workloads.size(); ++wi)
        for (size_t ci = 0; ci < ddt_sizes.size(); ++ci)
            merger.setRowKey(wi * ddt_sizes.size() + ci,
                             workloads[wi]->abbrev + "/ddt" +
                                 std::to_string(ddt_sizes[ci]));

    const auto result = driver::runSweep(
        runner, workloads, ddt_sizes.size(),
        [&](const Workload &w, size_t ci, TraceSource &trace, Rng &rng) {
            CloakingConfig config;
            config.ddt.entries = ddt_sizes[ci];
            CloakingEngine engine(config);
            drainTrace(trace, engine);

            // Exercise the per-job RNG so seeding feeds the output:
            // deterministic per job, not per worker.
            const uint64_t salt = rng.next();

            size_t wi = 0;
            while (workloads[wi]->abbrev != w.abbrev)
                ++wi;
            const size_t job = wi * ddt_sizes.size() + ci;
            const auto &s = engine.stats();
            merger.recordCount(job, "loads", s.loads);
            merger.recordCount(job, "coveredRaw", s.coveredRaw);
            merger.recordCount(job, "coveredRar", s.coveredRar);
            merger.recordCount(job, "detectedRaw", s.detectedRaw);
            merger.recordCount(job, "detectedRar", s.detectedRar);
            merger.recordCount(job, "rngSalt", salt);
            merger.record(job, "coverage", s.coverage());
            return 0;
        });

    EXPECT_TRUE(result.status.ok()) << result.status.toString();
    return merger.serialize();
}

TEST(SweepDeterminism, MergedStatsAreByteIdenticalForAnyWorkerCount)
{
    const std::string serial = runCloakingSweep(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("li/ddt32.loads "), std::string::npos);
    EXPECT_NE(serial.find("total.loads "), std::string::npos);

    const std::string four = runCloakingSweep(4);
    const std::string eight = runCloakingSweep(8);
    EXPECT_EQ(serial, four);
    EXPECT_EQ(serial, eight);
}

TEST(SweepDeterminism, RepeatedRunsAreByteIdentical)
{
    EXPECT_EQ(runCloakingSweep(4), runCloakingSweep(4));
}

// ----------------------------------------------- runner plumbing

TEST(SimJobRunner, CountsJobsTracesAndTiming)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};

    driver::RunnerConfig rc;
    rc.workers = 4;
    rc.maxInsts = 20'000;
    driver::SimJobRunner runner(rc);
    EXPECT_EQ(runner.workers(), 4u);

    auto loads = driver::runSweep(
        runner, workloads, 3,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            DynInst di;
            uint64_t loads = 0;
            while (trace.next(di))
                loads += di.isLoad();
            return loads;
        });
    ASSERT_TRUE(loads.status.ok()) << loads.status.toString();
    ASSERT_EQ(loads.size(), 6u);
    for (size_t i = 0; i < loads.size(); ++i)
        EXPECT_GT(loads[i], 0u);

    // Each workload generated once, all other jobs were cache hits.
    const auto cs = runner.traceCache().stats();
    EXPECT_EQ(cs.generations, 2u);
    EXPECT_EQ(cs.hits, 4u);

    std::ostringstream os;
    runner.dumpStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("driver.jobsCompleted 6"), std::string::npos);
    EXPECT_NE(s.find("driver.sweepsRun 1"), std::string::npos);
    EXPECT_NE(s.find("driver.traceGenerations 2"), std::string::npos);
    EXPECT_NE(s.find("driver.jobMicrosTotal"), std::string::npos);
    EXPECT_NE(s.find("driver.queueMicrosTotal"), std::string::npos);
}

TEST(SimJobRunner, ZeroWorkersResolvesToHardwareConcurrency)
{
    driver::SimJobRunner runner(driver::RunnerConfig{});
    EXPECT_GE(runner.workers(), 1u);
}

// --------------------------------------- cache budgets & eviction

TEST(TraceCacheBudget, EvictsLeastRecentlyUsedWithinBudget)
{
    driver::TraceCache cache(driver::TraceCacheConfig{0, 2});
    const Workload &a = findWorkload("li");
    const Workload &b = findWorkload("com");
    const Workload &c = findWorkload("go");

    auto ta = cache.get(a, 1, 5'000);
    auto tb = cache.get(b, 1, 5'000);
    EXPECT_EQ(cache.stats().residentTraces, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    auto tc = cache.get(c, 1, 5'000); // must evict 'a', the LRU
    const auto s = cache.stats();
    EXPECT_EQ(s.residentTraces, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_LE(s.peakResidentTraces, 2u);

    // 'b' survived the eviction: getting it again is a plain hit.
    EXPECT_EQ(cache.get(b, 1, 5'000).get(), tb.get());
    // 'a' was evicted but our reference keeps it alive: the cache
    // reuses it rather than re-running the generator.
    EXPECT_EQ(cache.get(a, 1, 5'000).get(), ta.get());
    EXPECT_EQ(cache.stats().regenerations, 0u);
    EXPECT_EQ(cache.stats().generations, 3u);
}

TEST(TraceCacheBudget, RegeneratesEvictedTraceWithNoSurvivingRefs)
{
    driver::TraceCache cache(driver::TraceCacheConfig{0, 1});
    const Workload &a = findWorkload("li");
    const Workload &b = findWorkload("com");

    cache.get(a, 1, 5'000); // ref dropped immediately
    cache.get(b, 1, 5'000); // evicts 'a'; nothing keeps it alive
    auto ta = cache.get(a, 1, 5'000); // generator must run again

    const auto s = cache.stats();
    EXPECT_EQ(s.generations, 3u);
    EXPECT_EQ(s.regenerations, 1u);
    EXPECT_GE(s.evictions, 1u);
    EXPECT_EQ(s.peakResidentTraces, 1u);
    EXPECT_EQ(ta->size(), 5'000u);
}

TEST(TraceCacheBudget, ByteBudgetEvictsToo)
{
    driver::TraceCache unbounded;
    const uint64_t one_trace =
        unbounded.get(findWorkload("li"), 1, 5'000)->memoryBytes();
    ASSERT_GT(one_trace, 0u);

    // Room for one trace but not two.
    driver::TraceCache cache(driver::TraceCacheConfig{one_trace + 1, 0});
    cache.get(findWorkload("li"), 1, 5'000);
    cache.get(findWorkload("com"), 1, 5'000);
    const auto s = cache.stats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_LE(s.residentBytes, one_trace + 1);
}

TEST(TraceCacheBudget, MemoryBytesIsTheFullFootprintIncludingHeader)
{
    // Regression: memoryBytes() used to charge only the packed record
    // storage, so --trace-budget-bytes under-counted every resident
    // trace by its header. The documented contract is the full
    // in-memory footprint: object header plus record storage.
    driver::TraceCache cache;
    const auto trace = cache.get(findWorkload("li"), 1, 5'000);
    EXPECT_EQ(trace->memoryBytes(),
              sizeof(RecordedTrace) + trace->size() * sizeof(PackedInst));
    // And the cache's residency accounting uses exactly that figure.
    EXPECT_EQ(cache.stats().residentBytes, trace->memoryBytes());
}

TEST(SweepDeterminism, TwoTraceBudgetOnFullSuiteIsByteIdentical)
{
    // The acceptance drill: all 18 workloads through a cache that may
    // hold only 2 traces. Evictions and regenerations must occur, the
    // budget must hold at every instant, and the merged table must be
    // byte-identical to the unbudgeted run.
    auto run = [](uint32_t budget, driver::TraceCache::CacheStats *out) {
        const auto workloads = driver::allWorkloadPtrs();
        driver::RunnerConfig rc;
        rc.workers = 4;
        rc.maxInsts = 5'000;
        rc.traceBudgetTraces = budget;
        driver::SimJobRunner runner(rc);

        driver::StatsMerger merger(workloads.size());
        for (size_t wi = 0; wi < workloads.size(); ++wi)
            merger.setRowKey(wi, workloads[wi]->abbrev);

        const auto result = driver::runSweep(
            runner, workloads, 1,
            [&](const Workload &w, size_t, TraceSource &trace, Rng &) {
                CloakingEngine engine{CloakingConfig{}};
                drainTrace(trace, engine);
                size_t wi = 0;
                while (workloads[wi]->abbrev != w.abbrev)
                    ++wi;
                merger.recordCount(wi, "loads", engine.stats().loads);
                merger.recordCount(wi, "coveredRaw",
                                   engine.stats().coveredRaw);
                merger.recordCount(wi, "coveredRar",
                                   engine.stats().coveredRar);
                return 0;
            });
        EXPECT_TRUE(result.status.ok()) << result.status.toString();
        if (out != nullptr)
            *out = runner.traceCache().stats();
        return merger.serialize();
    };

    driver::TraceCache::CacheStats budgeted_stats;
    const std::string unbudgeted = run(0, nullptr);
    const std::string budgeted = run(2, &budgeted_stats);
    EXPECT_EQ(unbudgeted, budgeted);
    EXPECT_GT(budgeted_stats.evictions, 0u);
    EXPECT_LE(budgeted_stats.peakResidentTraces, 2u);
    EXPECT_LE(budgeted_stats.residentTraces, 2u);
}

// ------------------------------------ retry, quarantine, watchdog

/** Driver fault points and the stop flag are process-global state;
 *  these tests must always leave both clean. */
class RunnerFaults : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        disarmDriverFaults();
        driver::clearStopRequest();
    }

    void TearDown() override
    {
        disarmDriverFaults();
        driver::clearStopRequest();
    }

    /** Cell: count loads in the trace. Deterministic and cheap. */
    static uint64_t
    countLoads(TraceSource &trace)
    {
        DynInst di;
        uint64_t loads = 0;
        while (trace.next(di))
            loads += di.isLoad();
        return loads;
    }
};

TEST_F(RunnerFaults, RetriesTransientCrashThenSucceeds)
{
    armDriverFault(DriverFaultPoint::JobCrash, 2, 1);

    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 10'000;
    rc.maxAttempts = 3;
    driver::SimJobRunner runner(rc);

    const auto result = driver::runSweep(
        runner, workloads, 2,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            return countLoads(trace);
        });

    EXPECT_TRUE(result.status.ok()) << result.status.toString();
    for (size_t i = 0; i < result.size(); ++i)
        EXPECT_GT(result[i], 0u);
    EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::JobCrash), 1u);
    EXPECT_TRUE(runner.quarantined().empty());

    std::ostringstream os;
    runner.dumpStats(os);
    EXPECT_NE(os.str().find("driver.retries 1"), std::string::npos);
    EXPECT_NE(os.str().find("driver.quarantined 0"), std::string::npos);
    EXPECT_NE(os.str().find("driver.jobsCompleted 4"), std::string::npos);
}

TEST_F(RunnerFaults, QuarantinesPermanentCrashAndKeepsGoing)
{
    armDriverFault(DriverFaultPoint::JobCrash, 1, 100);

    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 10'000;
    rc.maxAttempts = 2;
    driver::SimJobRunner runner(rc);

    const auto result = driver::runSweep(
        runner, workloads, 2,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            return countLoads(trace);
        });

    EXPECT_EQ(result.status.code(), StatusCode::FailedPrecondition);
    ASSERT_EQ(runner.quarantined().size(), 1u);
    const driver::JobFailure &f = runner.quarantined()[0];
    EXPECT_EQ(f.job, 1u);
    EXPECT_EQ(f.workload, "li");
    EXPECT_EQ(f.attempts, 2u);
    EXPECT_EQ(f.error.code(), StatusCode::Internal);
    EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::JobCrash), 2u);

    // The failed cell carries its error; every other cell has data.
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_FALSE(result.cells[1].ok());
    EXPECT_EQ(result.cells[1].status().code(), StatusCode::Internal);
    for (size_t i : {0u, 2u, 3u}) {
        ASSERT_TRUE(result.cells[i].ok()) << "cell " << i;
        EXPECT_GT(result[i], 0u);
    }

    std::ostringstream os;
    runner.dumpFailureTable(os);
    EXPECT_NE(os.str().find("quarantined jobs (1)"), std::string::npos);
    EXPECT_NE(os.str().find("li"), std::string::npos);
    EXPECT_NE(os.str().find("internal"), std::string::npos);
}

TEST_F(RunnerFaults, WatchdogUnwindsInjectedHang)
{
    armDriverFault(DriverFaultPoint::JobHang, 0, 1);

    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 10'000;
    rc.maxAttempts = 1;
    // Generous deadline: honest jobs must never trip it, even under
    // a sanitizer's ~10x slowdown — only the injected hang (which
    // sleeps out the whole deadline) may be quarantined.
    rc.jobDeadlineMs = 1000;
    driver::SimJobRunner runner(rc);

    const auto result = driver::runSweep(
        runner, workloads, 2,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            return countLoads(trace);
        });

    EXPECT_EQ(result.status.code(), StatusCode::FailedPrecondition);
    ASSERT_EQ(runner.quarantined().size(), 1u);
    EXPECT_EQ(runner.quarantined()[0].error.code(),
              StatusCode::DeadlineExceeded);
    for (size_t i : {1u, 2u, 3u})
        EXPECT_TRUE(result.cells[i].ok()) << "cell " << i;
}

TEST_F(RunnerFaults, WatchdogCatchesGenuinelySlowJobAtRecordBoundary)
{
    // Not an injected hang: the job body really does outlive its
    // deadline, and the watchdog wrapped around its trace source must
    // unwind it on its own worker thread — every other job completes
    // and run() reports the quarantine. This is the no-leaked-threads
    // acceptance drill; TSan runs this test in CI.
    const std::vector<const Workload *> workloads = {&findWorkload("li")};
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 10'000;
    rc.maxAttempts = 2;
    // Same margin as above: only the deliberately oversleeping cell
    // may exceed this, sanitizers included.
    rc.jobDeadlineMs = 500;
    driver::SimJobRunner runner(rc);

    const auto result = driver::runSweep(
        runner, workloads, 3,
        [](const Workload &, size_t ci, TraceSource &trace, Rng &) {
            if (ci == 1) // this cell is permanently too slow
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1000));
            return countLoads(trace);
        });

    EXPECT_EQ(result.status.code(), StatusCode::FailedPrecondition);
    ASSERT_EQ(runner.quarantined().size(), 1u);
    const driver::JobFailure &f = runner.quarantined()[0];
    EXPECT_EQ(f.job, 1u);
    EXPECT_EQ(f.attempts, 2u);
    EXPECT_EQ(f.error.code(), StatusCode::DeadlineExceeded);
    EXPECT_TRUE(result.cells[0].ok());
    EXPECT_TRUE(result.cells[2].ok());
    EXPECT_FALSE(result.cells[1].ok());
}

TEST_F(RunnerFaults, StopRequestCancelsWithoutRunningJobs)
{
    driver::requestStop();

    const std::vector<const Workload *> workloads = {&findWorkload("li")};
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 5'000;
    driver::SimJobRunner runner(rc);

    const auto result = driver::runSweep(
        runner, workloads, 2,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            return countLoads(trace);
        });

    EXPECT_EQ(result.status.code(), StatusCode::Cancelled);
    for (const auto &cell : result.cells)
        EXPECT_FALSE(cell.ok());

    std::ostringstream os;
    runner.dumpStats(os);
    EXPECT_NE(os.str().find("driver.jobsCompleted 0"), std::string::npos);
}

// -------------------------------------------------- sweep journal

TEST(SweepJournal, RoundTripsRecordsThroughLoad)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_journal_roundtrip.rarj";
    auto journal = driver::SweepJournal::create(path, 0xabcdef, 6);
    ASSERT_TRUE(journal.ok()) << journal.status().toString();

    const uint64_t p0 = 111, p1 = 222;
    EXPECT_TRUE((*journal)->append(4, &p0, sizeof(p0)).ok());
    EXPECT_TRUE((*journal)->append(1, &p1, sizeof(p1)).ok());
    EXPECT_EQ((*journal)->recordsAppended(), 2u);
    EXPECT_TRUE((*journal)->status().ok());

    auto replay = driver::SweepJournal::load(path);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay->fingerprint, 0xabcdefull);
    EXPECT_EQ(replay->numJobs, 6u);
    EXPECT_EQ(replay->tornRecords, 0u);
    ASSERT_EQ(replay->records.size(), 2u);
    EXPECT_EQ(replay->records[0].job, 4u);
    EXPECT_EQ(replay->records[1].job, 1u);
    ASSERT_EQ(replay->records[0].payload.size(), sizeof(p0));
    uint64_t got = 0;
    std::memcpy(&got, replay->records[0].payload.data(), sizeof(got));
    EXPECT_EQ(got, p0);
    std::remove(path.c_str());
}

TEST(SweepJournal, TornTailIsDetectedByCrcAndTruncatedOnResume)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_journal_torn.rarj";
    {
        auto journal = driver::SweepJournal::create(path, 0x11, 4);
        ASSERT_TRUE(journal.ok());
        const uint64_t p = 7;
        ASSERT_TRUE((*journal)->append(0, &p, sizeof(p)).ok());
        ASSERT_TRUE((*journal)->append(1, &p, sizeof(p)).ok());
    }
    // Tear the final record the way a power cut would: chop bytes off
    // the tail so its CRC can never validate.
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        const auto size = in.tellg();
        ASSERT_GT(size, 3);
        std::string bytes((size_t)size - 3, '\0');
        in.seekg(0);
        in.read(bytes.data(), (std::streamsize)bytes.size());
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            << bytes;
    }

    auto replay = driver::SweepJournal::load(path);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay->records.size(), 1u);
    EXPECT_EQ(replay->tornRecords, 1u);

    // Resume truncates the torn bytes and appends cleanly after them.
    driver::SweepJournal::Replay resumed;
    auto journal = driver::SweepJournal::openResume(path, 0x11, 4,
                                                    &resumed);
    ASSERT_TRUE(journal.ok()) << journal.status().toString();
    EXPECT_EQ(resumed.records.size(), 1u);
    const uint64_t p = 9;
    EXPECT_TRUE((*journal)->append(1, &p, sizeof(p)).ok());

    auto healed = driver::SweepJournal::load(path);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(healed->records.size(), 2u);
    EXPECT_EQ(healed->tornRecords, 0u);
    std::remove(path.c_str());
}

TEST(SweepJournal, RefusesToResumeADifferentSweep)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_journal_mismatch.rarj";
    {
        auto journal = driver::SweepJournal::create(path, 0x22, 4);
        ASSERT_TRUE(journal.ok());
    }
    driver::SweepJournal::Replay replay;
    EXPECT_EQ(driver::SweepJournal::openResume(path, 0x33, 4, &replay)
                  .status()
                  .code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(driver::SweepJournal::openResume(path, 0x22, 5, &replay)
                  .status()
                  .code(),
              StatusCode::FailedPrecondition);
    EXPECT_TRUE(
        driver::SweepJournal::openResume(path, 0x22, 4, &replay).ok());
    std::remove(path.c_str());
}

TEST(SweepJournal, RejectsFilesThatAreNotJournals)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_not_a_journal.rarj";
    std::ofstream(path, std::ios::binary) << "these are not the bytes";
    EXPECT_EQ(driver::SweepJournal::load(path).status().code(),
              StatusCode::Corruption);
    std::remove(path.c_str());

    EXPECT_EQ(driver::SweepJournal::load("/nonexistent/x.rarj")
                  .status()
                  .code(),
              StatusCode::IoError);
}

TEST(SweepJournal, FingerprintIsSensitiveToEveryGridParameter)
{
    const std::vector<std::string> w = {"li", "com"};
    const uint64_t base = driver::sweepFingerprint(w, 3, 8, 1, 1000);
    EXPECT_EQ(base, driver::sweepFingerprint(w, 3, 8, 1, 1000));
    EXPECT_NE(base, driver::sweepFingerprint({"li", "go"}, 3, 8, 1, 1000));
    EXPECT_NE(base, driver::sweepFingerprint(w, 4, 8, 1, 1000));
    EXPECT_NE(base, driver::sweepFingerprint(w, 3, 16, 1, 1000));
    EXPECT_NE(base, driver::sweepFingerprint(w, 3, 8, 2, 1000));
    EXPECT_NE(base, driver::sweepFingerprint(w, 3, 8, 1, 2000));
}

// ------------------------------------------------ resume semantics

TEST_F(RunnerFaults, ResumeRunsOnlyTheMissingJobs)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_resume_inproc.rarj";
    std::remove(path.c_str());

    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};
    auto cell = [](const Workload &, size_t ci, TraceSource &trace,
                   Rng &) {
        DynInst di;
        uint64_t loads = 0;
        while (trace.next(di))
            loads += di.isLoad();
        return loads + ci;
    };
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = 10'000;
    rc.maxAttempts = 1;

    // Clean reference run, no journal.
    std::vector<uint64_t> want;
    {
        driver::SimJobRunner runner(rc);
        const auto result =
            driver::runSweep(runner, workloads, 3, cell);
        ASSERT_TRUE(result.status.ok());
        for (size_t i = 0; i < result.size(); ++i)
            want.push_back(result[i]);
    }

    // Interrupted run: job 4 fails permanently, the rest journal.
    armDriverFault(DriverFaultPoint::JobCrash, 4, 100);
    {
        driver::SimJobRunner runner(rc);
        const auto result = driver::runSweep(runner, workloads, 3, cell,
                                             {path, false});
        EXPECT_FALSE(result.status.ok());
        EXPECT_FALSE(result.cells[4].ok());
    }
    disarmDriverFaults();

    // Resume: only the one missing job runs; every value matches the
    // uninterrupted reference exactly.
    {
        driver::SimJobRunner runner(rc);
        const auto result = driver::runSweep(runner, workloads, 3, cell,
                                             {path, true});
        ASSERT_TRUE(result.status.ok()) << result.status.toString();
        ASSERT_EQ(result.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(result[i], want[i]) << "cell " << i;

        std::ostringstream os;
        runner.dumpStats(os);
        EXPECT_NE(os.str().find("driver.jobsCompleted 1"),
                  std::string::npos);
        EXPECT_NE(os.str().find("driver.journalReplayed 5"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

#ifndef RARPRED_BENCH_DIR
#define RARPRED_BENCH_DIR ""
#endif

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(SweepResumeE2E, KilledParallelBenchResumesByteIdentical)
{
    // The end-to-end acceptance drill: SIGKILL a real 4-worker
    // bench_fig9_speedup sweep mid-run via the injected fault, resume
    // it from the journal, and demand stdout byte-identical to an
    // uninterrupted serial run.
    const std::string bench =
        std::string(RARPRED_BENCH_DIR) + "/bench_fig9_speedup";
    if (!std::ifstream(bench).good())
        GTEST_SKIP() << "bench binaries not built in this tree";

    const std::string dir = ::testing::TempDir();
    const std::string journal = dir + "rarpred_fig9_kill.rarj";
    const std::string out_clean = dir + "rarpred_fig9_clean.out";
    const std::string out_resumed = dir + "rarpred_fig9_resumed.out";
    std::remove(journal.c_str());

    const std::string args = " --max-insts=20000 ";

    // Uninterrupted serial reference.
    int rc = std::system(
        (bench + args + "--serial >" + out_clean + " 2>/dev/null")
            .c_str());
    ASSERT_EQ(rc, 0);

    // 4-worker run murdered by SIGKILL when job 40 is claimed.
    rc = std::system(("RARPRED_FAULT=job_kill:40 " + bench + args +
                      "--workers=4 --journal=" + journal +
                      " >/dev/null 2>/dev/null")
                         .c_str());
    EXPECT_NE(rc, 0);

    // The journal survived with some, but not all, of the 90 jobs —
    // flushed per append, so completed work is durable.
    auto replay = driver::SweepJournal::load(journal);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_GT(replay->records.size(), 0u);
    EXPECT_LT(replay->records.size(), 90u);

    rc = std::system((bench + args + "--serial --resume=" + journal +
                      " >" + out_resumed + " 2>/dev/null")
                         .c_str());
    EXPECT_EQ(rc, 0);

    const std::string clean = readWholeFile(out_clean);
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, readWholeFile(out_resumed));

    std::remove(journal.c_str());
    std::remove(out_clean.c_str());
    std::remove(out_resumed.c_str());
}

TEST(SweepResumeE2E, CrashedWorkerProcessBenchStaysByteIdentical)
{
    // The process-isolation acceptance drill: run the real bench
    // grid with --workers-proc=4 while the worker_crash fault
    // SIGKILLs a worker process mid-job. The sweep must finish with
    // exit 0, stdout byte-identical to --serial, and the stderr stat
    // dump must show the supervised restart.
    const std::string bench =
        std::string(RARPRED_BENCH_DIR) + "/bench_fig9_speedup";
    if (!std::ifstream(bench).good())
        GTEST_SKIP() << "bench binaries not built in this tree";
    if (driver::WorkerPool::resolveWorkerBinary("").empty())
        GTEST_SKIP() << "rarpred-worker not built in this tree";

    const std::string dir = ::testing::TempDir();
    const std::string out_serial = dir + "rarpred_fig9_serial.out";
    const std::string out_proc = dir + "rarpred_fig9_proc.out";
    const std::string err_proc = dir + "rarpred_fig9_proc.err";
    const std::string args = " --max-insts=20000 ";

    int rc = std::system(
        (bench + args + "--serial >" + out_serial + " 2>/dev/null")
            .c_str());
    ASSERT_EQ(rc, 0);

    rc = std::system(("RARPRED_FAULT=worker_crash:7 " + bench + args +
                      "--workers-proc=4 >" + out_proc + " 2>" +
                      err_proc)
                         .c_str());
    EXPECT_EQ(rc, 0);

    const std::string serial = readWholeFile(out_serial);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, readWholeFile(out_proc));
    const std::string stats = readWholeFile(err_proc);
    EXPECT_NE(stats.find("driver.worker.crashes 1"),
              std::string::npos)
        << stats;
    EXPECT_NE(stats.find("driver.worker.restarts 1"),
              std::string::npos)
        << stats;

    std::remove(out_serial.c_str());
    std::remove(out_proc.c_str());
    std::remove(err_proc.c_str());
}

// ------------------------------------------- merged error surfacing

TEST(StatsMergerErrors, ErrorRowsReplaceStatsAndAddErrorTotal)
{
    driver::StatsMerger merger(2);
    merger.setRowKey(0, "li");
    merger.setRowKey(1, "com");
    merger.recordCount(0, "loads", 10);
    merger.recordCount(1, "loads", 20);
    merger.setError(1, Status::deadlineExceeded("too slow"));

    const std::string s = merger.serialize();
    EXPECT_NE(s.find("li.loads 10"), std::string::npos);
    EXPECT_NE(s.find("com.error deadline-exceeded: too slow"),
              std::string::npos);
    // The failed row's partial stats are suppressed everywhere,
    // including the totals.
    EXPECT_EQ(s.find("com.loads"), std::string::npos);
    EXPECT_NE(s.find("total.loads 10"), std::string::npos);
    EXPECT_NE(s.find("total.errors 1"), std::string::npos);
    EXPECT_EQ(merger.numErrors(), 1u);
}

TEST(StatsMergerErrors, CleanSweepsSerializeExactlyAsBefore)
{
    driver::StatsMerger merger(1);
    merger.setRowKey(0, "li");
    merger.recordCount(0, "loads", 5);
    const std::string s = merger.serialize();
    EXPECT_EQ(s, "li.loads 5\ntotal.loads 5\n");
    EXPECT_EQ(s.find("errors"), std::string::npos);
    EXPECT_EQ(merger.numErrors(), 0u);
}

TEST(StatsMergerErrors, ErrorsJsonIsMachineReadable)
{
    // The same machine-readable error report is shared between
    // finishSweep() ("sweep.errorsJson ...") and the service's
    // SweepDone frames, so tooling parses one format everywhere.
    driver::StatsMerger merger(3);
    merger.setRowKey(0, "li/cfg0");
    merger.setRowKey(1, "li/cfg1");
    merger.setRowKey(2, "com/cfg0");
    merger.recordCount(0, "loads", 10);
    merger.setError(1, Status::deadlineExceeded("too slow"));
    merger.setError(2, Status::internal("job threw: \"boom\""));

    EXPECT_EQ(merger.errorsJson(),
              "[{\"row\":\"li/cfg1\",\"job\":1,"
              "\"code\":\"deadline-exceeded\","
              "\"message\":\"too slow\"},"
              "{\"row\":\"com/cfg0\",\"job\":2,"
              "\"code\":\"internal\","
              "\"message\":\"job threw: \\\"boom\\\"\"}]");

    driver::StatsMerger clean(1);
    clean.setRowKey(0, "li");
    clean.recordCount(0, "loads", 5);
    EXPECT_EQ(clean.errorsJson(), "[]");
}

TEST(StatsMergerErrors, ErrorsJsonHonorsAByteBudget)
{
    // The service must fit the report into one wire frame: under a
    // byte budget, entries are dropped whole (never cut mid-object)
    // and counted in a trailing {"omitted":N} element, and the
    // bounded report is deterministic.
    driver::StatsMerger merger(100);
    for (size_t job = 0; job < 100; ++job) {
        merger.setRowKey(job, "li/cfg" + std::to_string(job));
        merger.setError(job, Status::internal("boom " +
                                              std::to_string(job)));
    }
    const std::string unbounded = merger.errorsJson();
    ASSERT_GT(unbounded.size(), 2048u);

    const std::string bounded = merger.errorsJson(2048);
    EXPECT_LE(bounded.size(), 2048u);
    EXPECT_EQ(bounded.front(), '[');
    EXPECT_EQ(bounded.back(), ']');
    // Kept entries are a prefix, intact; the rest are counted.
    EXPECT_NE(bounded.find("\"row\":\"li/cfg0\""), std::string::npos);
    const size_t kept = (size_t)std::count(bounded.begin(),
                                           bounded.end(), '{') -
                        1; // minus the omitted-marker object
    ASSERT_LT(kept, 100u);
    EXPECT_NE(bounded.find("{\"omitted\":" +
                           std::to_string(100 - kept) + "}"),
              std::string::npos)
        << bounded;
    EXPECT_EQ(bounded, merger.errorsJson(2048));

    // A budget comfortably above the report changes nothing.
    EXPECT_EQ(merger.errorsJson(1u << 20), unbounded);
}

TEST(StatsMergerErrors, EmbeddedNewlinesCannotForgeRows)
{
    // An adversarial error message must not be able to inject extra
    // lines into the line-oriented table nor break the JSON report.
    driver::StatsMerger merger(1);
    merger.setRowKey(0, "li");
    merger.setError(
        0, Status::internal("line1\nli.loads 999\r\ttab\"quote\""));

    const std::string s = merger.serialize();
    // The newline was escaped in place: the forged text survives
    // only *inside* the one error line, never as a line of its own.
    EXPECT_EQ(s.find("\nli.loads 999"), std::string::npos) << s;
    EXPECT_NE(s.find("\\nli.loads 999\\r"), std::string::npos) << s;
    EXPECT_TRUE(s.rfind("li.error ", 0) == 0) << s;

    const std::string json = merger.errorsJson();
    EXPECT_NE(json.find("line1\\nli.loads 999\\r\\ttab"
                        "\\\"quote\\\""),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ------------------------------------------------- shared CLI args

/** Build argv and run parseSweepArgs with RARPRED_WORKERS unset. */
Result<driver::SweepOptions>
parseArgs(std::vector<std::string> args)
{
    unsetenv("RARPRED_WORKERS");
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (std::string &a : args)
        argv.push_back(a.data());
    return driver::parseSweepArgs((int)argv.size(), argv.data());
}

TEST(ParseSweepArgs, DefaultsAreTheRunnerDefaults)
{
    auto opts = parseArgs({});
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->runner.workers, 0u);
    EXPECT_EQ(opts->runner.scale, 1u);
    EXPECT_EQ(opts->runner.maxInsts, ~0ull);
    EXPECT_EQ(opts->runner.maxAttempts, 3u);
    EXPECT_FALSE(opts->help);
    EXPECT_TRUE(opts->io.journalPath.empty());
    EXPECT_FALSE(opts->io.resume);
    EXPECT_TRUE(opts->positional.empty());
}

TEST(ParseSweepArgs, ParsesEveryFlag)
{
    auto opts = parseArgs({"--workers=3", "--scale=2",
                           "--max-insts=1000", "--retries=5",
                           "--deadline-ms=100", "--retry-backoff-ms=10",
                           "--trace-budget=2", "--trace-budget-bytes=64",
                           "--journal=/tmp/x.rarj", "tom"});
    ASSERT_TRUE(opts.ok()) << opts.status().toString();
    EXPECT_EQ(opts->runner.workers, 3u);
    EXPECT_EQ(opts->runner.scale, 2u);
    EXPECT_EQ(opts->runner.maxInsts, 1000u);
    EXPECT_EQ(opts->runner.maxAttempts, 6u); // retries + first attempt
    EXPECT_EQ(opts->runner.jobDeadlineMs, 100u);
    EXPECT_EQ(opts->runner.retryBackoffMs, 10u);
    EXPECT_EQ(opts->runner.traceBudgetTraces, 2u);
    EXPECT_EQ(opts->runner.traceBudgetBytes, 64u);
    EXPECT_EQ(opts->io.journalPath, "/tmp/x.rarj");
    ASSERT_EQ(opts->positional.size(), 1u);
    EXPECT_EQ(opts->positional[0], "tom");
}

TEST(ParseSweepArgs, WorkersProcSetsThreadsUnlessOverridden)
{
    // --workers-proc alone sizes both the process pool and the
    // dispatching thread pool...
    auto opts = parseArgs({"--workers-proc=4",
                           "--worker-heartbeat-ms=1234"});
    ASSERT_TRUE(opts.ok()) << opts.status().toString();
    EXPECT_EQ(opts->runner.procWorkers, 4u);
    EXPECT_EQ(opts->runner.workers, 4u);
    EXPECT_EQ(opts->runner.workerHeartbeatTimeoutMs, 1234u);

    // ...but an explicit thread count (or --serial) wins.
    opts = parseArgs({"--workers-proc=4", "--workers=2"});
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->runner.procWorkers, 4u);
    EXPECT_EQ(opts->runner.workers, 2u);
    opts = parseArgs({"--serial", "--workers-proc=4"});
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->runner.workers, 1u);
    EXPECT_EQ(opts->runner.procWorkers, 4u);
}

TEST(ParseSweepArgs, SerialMeansOneWorkerAndZeroRetriesMeansOneAttempt)
{
    auto opts = parseArgs({"--serial", "--retries=0"});
    ASSERT_TRUE(opts.ok());
    EXPECT_EQ(opts->runner.workers, 1u);
    EXPECT_EQ(opts->runner.maxAttempts, 1u);
}

TEST(ParseSweepArgs, ResumeVariants)
{
    auto bare = parseArgs({"--resume"});
    ASSERT_FALSE(bare.ok());
    EXPECT_EQ(bare.status().code(), StatusCode::InvalidArgument);

    auto with_path = parseArgs({"--resume=/tmp/j.rarj"});
    ASSERT_TRUE(with_path.ok());
    EXPECT_TRUE(with_path->io.resume);
    EXPECT_EQ(with_path->io.journalPath, "/tmp/j.rarj");

    auto with_journal = parseArgs({"--journal=/tmp/j.rarj", "--resume"});
    ASSERT_TRUE(with_journal.ok());
    EXPECT_TRUE(with_journal->io.resume);
    EXPECT_EQ(with_journal->io.journalPath, "/tmp/j.rarj");
}

TEST(ParseSweepArgs, RejectsUnknownFlagsAndBadNumbers)
{
    auto unknown = parseArgs({"--frobnicate"});
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(unknown.status().message().find("--frobnicate"),
              std::string::npos);

    EXPECT_FALSE(parseArgs({"--workers=three"}).ok());
    EXPECT_FALSE(parseArgs({"--max-insts="}).ok());
    EXPECT_FALSE(parseArgs({"--scale=0"}).ok());
    EXPECT_FALSE(parseArgs({"--deadline-ms=12a"}).ok());
}

TEST(ParseSweepArgs, WorkersEnvAppliesUntilFlagOverrides)
{
    ASSERT_EQ(setenv("RARPRED_WORKERS", "7", 1), 0);
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    auto from_env = driver::parseSweepArgs(1, argv.data());
    ASSERT_TRUE(from_env.ok());
    EXPECT_EQ(from_env->runner.workers, 7u);

    static std::string flag = "--workers=2";
    argv.push_back(flag.data());
    auto overridden = driver::parseSweepArgs(2, argv.data());
    unsetenv("RARPRED_WORKERS");
    ASSERT_TRUE(overridden.ok());
    EXPECT_EQ(overridden->runner.workers, 2u);
}

TEST(ParseSweepArgs, HelpFlagIsRecognizedAndUsageMentionsEveryFlag)
{
    auto opts = parseArgs({"--help"});
    ASSERT_TRUE(opts.ok());
    EXPECT_TRUE(opts->help);

    const std::string usage = driver::sweepUsage();
    for (const char *flag :
         {"--workers", "--serial", "--scale", "--max-insts", "--retries",
          "--deadline-ms", "--retry-backoff-ms", "--trace-budget",
          "--trace-budget-bytes", "--journal", "--resume",
          "--snapshot-dir", "--snapshot-every", "--restore",
          "--audit-every", "--workers-proc", "--worker-heartbeat-ms"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

// ------------------------------------------------ sweep speedup

/** Wall-clock one OoO sweep at the given worker count. */
double
timeOooSweep(unsigned workers)
{
    const std::vector<const Workload *> workloads = {
        &findWorkload("li"), &findWorkload("com")};

    driver::RunnerConfig rc;
    rc.workers = workers;
    rc.maxInsts = 150'000;
    driver::SimJobRunner runner(rc);
    // Pre-generate traces so we time simulation, not generation.
    for (const Workload *w : workloads)
        runner.traceCache().get(*w, rc.scale, rc.maxInsts);

    const auto start = std::chrono::steady_clock::now();
    driver::runSweep(runner, workloads, 8,
                     [](const Workload &, size_t, TraceSource &trace,
                        Rng &) {
                         OooCpu cpu(CpuConfig{}, {});
                         drainTrace(trace, cpu);
                         return cpu.stats().cycles;
                     });
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

TEST(SweepSpeedup, FourWorkersBeatSerialByTwoX)
{
#ifdef RARPRED_UNDER_SANITIZER
    GTEST_SKIP() << "wall-clock ratios are not meaningful under "
                    "sanitizers";
#endif
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    // Best of two runs each, to damp scheduler noise.
    const double serial =
        std::min(timeOooSweep(1), timeOooSweep(1));
    const double parallel =
        std::min(timeOooSweep(4), timeOooSweep(4));
    EXPECT_GE(serial / parallel, 2.0)
        << "serial " << serial << "s, 4 workers " << parallel << "s";
}

} // namespace
} // namespace rarpred
