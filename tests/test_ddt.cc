/**
 * @file
 * Unit tests for the Dependence Detection Table: the recording rules
 * of Section 3.1, LRU capacity effects, and the separate-tables
 * variant of Section 5.6.2.
 */

#include <gtest/gtest.h>

#include "core/ddt.hh"

namespace rarpred {
namespace {

TEST(Ddt, DetectsRawDependence)
{
    DependenceDetector d(DdtConfig{});
    d.onStore(0x100, 0x8000);
    auto dep = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Raw);
    EXPECT_EQ(dep->sourcePc, 0x100u);
    EXPECT_EQ(dep->sinkPc, 0x200u);
}

TEST(Ddt, DetectsRarDependence)
{
    DependenceDetector d(DdtConfig{});
    EXPECT_FALSE(d.onLoad(0x100, 0x8000).has_value());
    auto dep = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Rar);
    EXPECT_EQ(dep->sourcePc, 0x100u);
    EXPECT_EQ(dep->sinkPc, 0x200u);
}

TEST(Ddt, EarliestLoadStaysRecorded)
{
    // LD1 A, LD2 A, LD3 A: dependences are (LD1,LD2) and (LD1,LD3),
    // never (LD2,LD3) -- Section 2's source-only definition.
    DependenceDetector d(DdtConfig{});
    d.onLoad(0x100, 0x8000);
    auto dep2 = d.onLoad(0x200, 0x8000);
    auto dep3 = d.onLoad(0x300, 0x8000);
    ASSERT_TRUE(dep2 && dep3);
    EXPECT_EQ(dep2->sourcePc, 0x100u);
    EXPECT_EQ(dep3->sourcePc, 0x100u);
}

TEST(Ddt, StoreDisplacesLoadRecord)
{
    DependenceDetector d(DdtConfig{});
    d.onLoad(0x100, 0x8000);
    d.onStore(0x300, 0x8000);
    auto dep = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Raw);
    EXPECT_EQ(dep->sourcePc, 0x300u);
}

TEST(Ddt, StoreStaysRecordedAfterLoads)
{
    // After a store, every subsequent load sees the store (no RAR
    // chains start behind a recorded store).
    DependenceDetector d(DdtConfig{});
    d.onStore(0x300, 0x8000);
    auto dep1 = d.onLoad(0x100, 0x8000);
    auto dep2 = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(dep1 && dep2);
    EXPECT_EQ(dep1->type, DepType::Raw);
    EXPECT_EQ(dep2->type, DepType::Raw);
    EXPECT_EQ(dep2->sourcePc, 0x300u);
}

TEST(Ddt, WordGranularityGroupsSameWord)
{
    DependenceDetector d(DdtConfig{});
    d.onLoad(0x100, 0x8000);
    // Same 8-byte word, different byte address.
    auto dep = d.onLoad(0x200, 0x8004);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->sourcePc, 0x100u);
    // Different word: no dependence.
    EXPECT_FALSE(d.onLoad(0x300, 0x8008).has_value());
}

TEST(Ddt, CoarserGranularityWidensMatches)
{
    DdtConfig config;
    config.granularityLog2 = 6; // 64-byte lines
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    auto dep = d.onLoad(0x200, 0x8030);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->sourcePc, 0x100u);
}

TEST(Ddt, CapacityEvictsOldEntries)
{
    DdtConfig config;
    config.entries = 4;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    for (uint64_t i = 1; i <= 4; ++i)
        d.onLoad(0x100 + i * 4, 0x8000 + i * 8);
    // 0x8000 has been evicted: the new load records itself instead.
    EXPECT_FALSE(d.onLoad(0x200, 0x8000).has_value());
}

TEST(Ddt, LruKeepsRecentlyTouchedEntries)
{
    DdtConfig config;
    config.entries = 2;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    d.onLoad(0x104, 0x8008);
    d.onLoad(0x200, 0x8000); // touch 0x8000 (RAR detected)
    d.onLoad(0x108, 0x8010); // evicts 0x8008, not 0x8000
    auto dep = d.onLoad(0x300, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->sourcePc, 0x100u);
}

TEST(Ddt, RawOnlyConfigDetectsNoRar)
{
    DdtConfig config;
    config.trackLoads = false;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    EXPECT_FALSE(d.onLoad(0x200, 0x8000).has_value());
    d.onStore(0x300, 0x8000);
    auto dep = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Raw);
}

TEST(Ddt, RarOnlyConfigStoresKillChains)
{
    DdtConfig config;
    config.trackStores = false;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    d.onStore(0x300, 0x8000); // erases, records nothing
    auto dep = d.onLoad(0x200, 0x8000);
    EXPECT_FALSE(dep.has_value()); // neither RAW (untracked) nor RAR
    // The load re-established itself as the chain head.
    auto dep2 = d.onLoad(0x400, 0x8000);
    ASSERT_TRUE(dep2.has_value());
    EXPECT_EQ(dep2->type, DepType::Rar);
    EXPECT_EQ(dep2->sourcePc, 0x200u);
}

TEST(Ddt, SeparateTablesDetectBothTypes)
{
    DdtConfig config;
    config.separateTables = true;
    DependenceDetector d(config);
    d.onStore(0x100, 0x8000);
    auto raw = d.onLoad(0x200, 0x8000);
    ASSERT_TRUE(raw && raw->type == DepType::Raw);
    d.onLoad(0x300, 0x9000);
    auto rar = d.onLoad(0x400, 0x9000);
    ASSERT_TRUE(rar && rar->type == DepType::Rar);
    EXPECT_EQ(rar->sourcePc, 0x300u);
}

TEST(Ddt, SeparateTablesStoreInvalidatesLoadEntry)
{
    DdtConfig config;
    config.separateTables = true;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    d.onStore(0x300, 0x8000);
    auto dep = d.onLoad(0x200, 0x8000);
    // Must be a RAW with the store, not a stale RAR with 0x100.
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Raw);
    EXPECT_EQ(dep->sourcePc, 0x300u);
}

TEST(Ddt, SeparateTablesAvoidLoadStoreEvictionAnomaly)
{
    // The Section 5.6.2 anomaly: in a common DDT, loads to other
    // addresses can evict a store; separate tables keep it.
    DdtConfig common;
    common.entries = 2;
    DependenceDetector dc(common);
    dc.onStore(0x100, 0x8000);
    dc.onLoad(0x104, 0x9000);
    dc.onLoad(0x108, 0xa000); // evicts the store from the shared table
    auto miss = dc.onLoad(0x200, 0x8000);
    EXPECT_FALSE(miss.has_value());

    DdtConfig separate = common;
    separate.separateTables = true;
    DependenceDetector ds(separate);
    ds.onStore(0x100, 0x8000);
    ds.onLoad(0x104, 0x9000);
    ds.onLoad(0x108, 0xa000);
    auto hit = ds.onLoad(0x200, 0x8000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->type, DepType::Raw);
}

TEST(Ddt, SelfRarDependence)
{
    // The same static load re-reading an unwritten address is RAR
    // dependent on itself.
    DependenceDetector d(DdtConfig{});
    d.onLoad(0x100, 0x8000);
    auto dep = d.onLoad(0x100, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->type, DepType::Rar);
    EXPECT_EQ(dep->sourcePc, 0x100u);
    EXPECT_EQ(dep->sinkPc, 0x100u);
}

TEST(Ddt, ClearForgetsEverything)
{
    DependenceDetector d(DdtConfig{});
    d.onLoad(0x100, 0x8000);
    d.clear();
    EXPECT_FALSE(d.onLoad(0x200, 0x8000).has_value());
}

TEST(Ddt, UnboundedNeverEvicts)
{
    DdtConfig config;
    config.entries = 0;
    DependenceDetector d(config);
    d.onLoad(0x100, 0x8000);
    for (uint64_t i = 0; i < 10000; ++i)
        d.onLoad(0x200, 0x10000 + i * 8);
    auto dep = d.onLoad(0x300, 0x8000);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->sourcePc, 0x100u);
}

} // namespace
} // namespace rarpred
