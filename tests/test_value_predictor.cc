/**
 * @file
 * Unit tests for the last-value load predictor (Section 5.5).
 */

#include <gtest/gtest.h>

#include "core/value_predictor.hh"

namespace rarpred {
namespace {

DynInst
makeLoad(uint64_t pc, uint64_t value, uint64_t seq = 0)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.op = Opcode::Lw;
    di.dst = 1;
    di.eaddr = 0x8000;
    di.value = value;
    return di;
}

TEST(ValuePredictor, FirstEncounterIsNotCorrect)
{
    LastValuePredictor vp;
    EXPECT_FALSE(vp.processInst(makeLoad(0x100, 5)));
    EXPECT_EQ(vp.stats().loads, 1u);
    EXPECT_EQ(vp.stats().hits, 0u);
}

TEST(ValuePredictor, RepeatedValuePredicts)
{
    LastValuePredictor vp;
    vp.processInst(makeLoad(0x100, 5));
    EXPECT_TRUE(vp.processInst(makeLoad(0x100, 5)));
    EXPECT_EQ(vp.stats().correct, 1u);
}

TEST(ValuePredictor, ChangedValueMissesThenLearns)
{
    LastValuePredictor vp;
    vp.processInst(makeLoad(0x100, 5));
    EXPECT_FALSE(vp.processInst(makeLoad(0x100, 6)));
    EXPECT_TRUE(vp.processInst(makeLoad(0x100, 6)));
}

TEST(ValuePredictor, DistinctPcsAreIndependent)
{
    LastValuePredictor vp;
    vp.processInst(makeLoad(0x100, 5));
    vp.processInst(makeLoad(0x200, 6));
    EXPECT_TRUE(vp.processInst(makeLoad(0x100, 5)));
    EXPECT_TRUE(vp.processInst(makeLoad(0x200, 6)));
}

TEST(ValuePredictor, IgnoresNonLoads)
{
    LastValuePredictor vp;
    DynInst di;
    di.op = Opcode::Sw;
    di.pc = 0x100;
    di.value = 5;
    EXPECT_FALSE(vp.processInst(di));
    EXPECT_EQ(vp.stats().loads, 0u);
}

TEST(ValuePredictor, FiniteCapacityEvicts)
{
    LastValuePredictor vp({4, 0});
    vp.processInst(makeLoad(0x100, 5));
    for (uint64_t i = 1; i <= 4; ++i)
        vp.processInst(makeLoad(0x100 + i * 4, 9));
    // 0x100 evicted: next encounter is a table miss.
    EXPECT_FALSE(vp.processInst(makeLoad(0x100, 5)));
    EXPECT_EQ(vp.stats().hits, 0u + 0u + 1u * 0 + vp.stats().hits);
}

TEST(ValuePredictor, AccuracyFraction)
{
    LastValuePredictor vp;
    vp.processInst(makeLoad(0x100, 5)); // miss
    vp.processInst(makeLoad(0x100, 5)); // correct
    vp.processInst(makeLoad(0x100, 7)); // wrong
    vp.processInst(makeLoad(0x100, 7)); // correct
    EXPECT_DOUBLE_EQ(vp.stats().accuracy(), 0.5);
}

TEST(ValuePredictor, ResetStatsKeepsTable)
{
    LastValuePredictor vp;
    vp.processInst(makeLoad(0x100, 5));
    vp.resetStats();
    EXPECT_EQ(vp.stats().loads, 0u);
    // The table still remembers the value.
    EXPECT_TRUE(vp.processInst(makeLoad(0x100, 5)));
}

} // namespace
} // namespace rarpred
