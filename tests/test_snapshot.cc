/**
 * @file
 * Tests for mid-simulation checkpoint/restore (driver/sim_snapshot)
 * and the online invariant auditor: component-level save/restore
 * round trips, the RARS snapshot file format and its corruption
 * rejection, epoch snapshotting + restore through pumpSimulation()
 * with the divergence oracle, flush-to-safe self-healing under
 * injected structural faults, and the end-to-end SIGKILL/--restore
 * and SIGTERM drills against the real bench binaries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/statesave.hh"
#include "core/cloaking.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sim_snapshot.hh"
#include "driver/sweep.hh"
#include "driver/sweep_journal.hh"
#include "faultinject/driver_faults.hh"
#include "vm/micro_vm.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

#ifndef RARPRED_BENCH_DIR
#define RARPRED_BENCH_DIR ""
#endif
#ifndef RARPRED_EXAMPLES_DIR
#define RARPRED_EXAMPLES_DIR ""
#endif

namespace rarpred {
namespace {

/** Every test starts and ends with no armed faults or stop request. */
class SnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disarmDriverFaults();
        driver::clearStopRequest();
    }

    void
    TearDown() override
    {
        disarmDriverFaults();
        driver::clearStopRequest();
    }
};

CloakingConfig
cloakingConfig()
{
    CloakingConfig config;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.sf = {1024, 2};
    return config;
}

CloakTimingConfig
timingConfig()
{
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine = cloakingConfig();
    return cloak;
}

std::string
cloakingDump(const CloakingEngine &engine)
{
    std::ostringstream os;
    engine.stats().dump(os);
    return os.str();
}

std::string
cpuDump(const OooCpu &cpu)
{
    std::ostringstream os;
    cpu.stats().dump(os);
    return os.str();
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------ fingerprint & window CRC

TEST_F(SnapshotTest, FingerprintSensitiveToEveryJobIdentityField)
{
    const uint64_t fp = driver::snapshotFingerprint("li", 1, 1, 50000);
    EXPECT_EQ(fp, driver::snapshotFingerprint("li", 1, 1, 50000));
    EXPECT_NE(fp, driver::snapshotFingerprint("com", 1, 1, 50000));
    EXPECT_NE(fp, driver::snapshotFingerprint("li", 2, 1, 50000));
    EXPECT_NE(fp, driver::snapshotFingerprint("li", 1, 2, 50000));
    EXPECT_NE(fp, driver::snapshotFingerprint("li", 1, 1, 60000));
}

TEST_F(SnapshotTest, WindowCrcDistinguishesStreamsAndPositions)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 5000);

    driver::TraceWindowCrc a, b, c;
    RecordedTraceSource src(trace);
    DynInst di;
    uint64_t n = 0;
    while (src.next(di)) {
        a.push(di);
        if (n < 4999)
            b.push(di); // one record short
        c.push(di);
        ++n;
    }
    EXPECT_EQ(a.value(), c.value());
    EXPECT_NE(a.value(), b.value());
}

// ------------------------------------------- component round trips

TEST_F(SnapshotTest, MicroVmRoundTripContinuesIdentically)
{
    const Workload &w = findWorkload("com");
    Program prog = w.build(1);

    MicroVM vm(prog);
    DynInst di;
    for (int i = 0; i < 5000; ++i)
        ASSERT_TRUE(vm.next(di));
    StateWriter wtr;
    vm.saveState(wtr);

    MicroVM vm2(prog);
    StateReader rdr(wtr.buffer());
    ASSERT_TRUE(vm2.restoreState(rdr).ok());

    DynInst want, got;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(vm.next(want), vm2.next(got));
        EXPECT_EQ(want.seq, got.seq);
        EXPECT_EQ(want.pc, got.pc);
        EXPECT_EQ(want.eaddr, got.eaddr);
        EXPECT_EQ(want.value, got.value);
    }
}

TEST_F(SnapshotTest, MicroVmRejectsSnapshotOfDifferentProgram)
{
    Program li = findWorkload("li").build(1);
    Program com = findWorkload("com").build(1);

    MicroVM vm(li);
    DynInst di;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(vm.next(di));
    StateWriter wtr;
    vm.saveState(wtr);

    MicroVM other(com);
    StateReader rdr(wtr.buffer());
    EXPECT_FALSE(other.restoreState(rdr).ok());
}

TEST_F(SnapshotTest, RecordedTraceSourcePositionAndSeek)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 1000);

    RecordedTraceSource src(trace);
    DynInst di;
    for (int i = 0; i < 600; ++i)
        ASSERT_TRUE(src.next(di));
    EXPECT_EQ(src.position(), 600u);

    src.seek(250);
    ASSERT_TRUE(src.next(di));
    EXPECT_EQ(di.seq, 250u);

    EXPECT_TRUE(src.rewindToStart());
    ASSERT_TRUE(src.next(di));
    EXPECT_EQ(di.seq, 0u);
}

TEST_F(SnapshotTest, CloakingEngineRoundTripMidTrace)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 30000);

    CloakingEngine engine(cloakingConfig());
    RecordedTraceSource src(trace);
    DynInst di;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(src.next(di));
        engine.onInst(di);
    }
    StateWriter wtr;
    engine.saveState(wtr);

    CloakingEngine resumed(cloakingConfig());
    StateReader rdr(wtr.buffer());
    ASSERT_TRUE(resumed.restoreState(rdr).ok());

    RecordedTraceSource tail(trace);
    tail.seek(10000);
    while (src.next(di))
        engine.onInst(di);
    while (tail.next(di))
        resumed.onInst(di);
    EXPECT_EQ(cloakingDump(engine), cloakingDump(resumed));
}

TEST_F(SnapshotTest, OooCpuRoundTripMidTraceIdenticalFinalStats)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 30000);

    OooCpu cpu(CpuConfig{}, timingConfig());
    RecordedTraceSource src(trace);
    DynInst di;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(src.next(di));
        cpu.onInst(di);
    }
    StateWriter wtr;
    cpu.saveState(wtr);

    OooCpu resumed(CpuConfig{}, timingConfig());
    StateReader rdr(wtr.buffer());
    const Status st = resumed.restoreState(rdr);
    ASSERT_TRUE(st.ok()) << st.toString();

    RecordedTraceSource tail(trace);
    tail.seek(10000);
    while (src.next(di))
        cpu.onInst(di);
    while (tail.next(di))
        resumed.onInst(di);
    EXPECT_EQ(cpuDump(cpu), cpuDump(resumed));
}

TEST_F(SnapshotTest, OooCpuRejectsSnapshotWithDifferentCloaking)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 2000);

    OooCpu cloaked(CpuConfig{}, timingConfig());
    RecordedTraceSource src(trace);
    DynInst di;
    while (src.next(di))
        cloaked.onInst(di);
    StateWriter wtr;
    cloaked.saveState(wtr);

    OooCpu base(CpuConfig{}, {}); // no cloaking engine
    StateReader rdr(wtr.buffer());
    EXPECT_FALSE(base.restoreState(rdr).ok());
}

// -------------------------------------------- snapshot file format

TEST_F(SnapshotTest, SnapshotFileRoundTripsAndRejectsCorruption)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 5000);
    CloakingEngine engine(cloakingConfig());
    RecordedTraceSource src(trace);
    DynInst di;
    while (src.next(di))
        engine.onInst(di);

    const std::string path =
        ::testing::TempDir() + "rarpred_snap_fmt.rars";
    std::remove(path.c_str());
    ASSERT_TRUE(driver::writeSnapshot(path, 99, 5000, 7, engine).ok());

    auto img = driver::loadSnapshot(path);
    ASSERT_TRUE(img.ok()) << img.status().toString();
    EXPECT_EQ(img->fingerprint, 99u);
    EXPECT_EQ(img->consumed, 5000u);
    EXPECT_EQ(img->windowCrc, 7u);
    EXPECT_GT(img->state.size(), 0u);

    // A fresh engine restores the validated state blob directly
    // (the blob is the sink's sections inside one outer SNAP frame).
    CloakingEngine restored(cloakingConfig());
    StateReader rdr(img->state);
    ASSERT_TRUE(rdr.enterSection(driver::kSnapshotStateTag).ok());
    ASSERT_TRUE(restored.restoreState(rdr).ok());
    ASSERT_TRUE(rdr.leaveSection().ok());
    EXPECT_EQ(cloakingDump(engine), cloakingDump(restored));

    // Flip one byte mid-state: some section CRC must fail.
    std::string raw = readWholeFile(path);
    raw[raw.size() / 2] = (char)(raw[raw.size() / 2] ^ 0x40);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(raw.data(), (std::streamsize)raw.size());
    }
    EXPECT_FALSE(driver::loadSnapshot(path).ok());

    // Truncate to half: rejected before any state is touched.
    raw[raw.size() / 2] = (char)(raw[raw.size() / 2] ^ 0x40); // undo
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(raw.data(), (std::streamsize)(raw.size() / 2));
    }
    EXPECT_FALSE(driver::loadSnapshot(path).ok());
    std::remove(path.c_str());
}

TEST_F(SnapshotTest, TornSnapshotFaultProducesRejectedFile)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 3000);
    CloakingEngine engine(cloakingConfig());
    RecordedTraceSource src(trace);
    DynInst di;
    while (src.next(di))
        engine.onInst(di);

    const std::string path =
        ::testing::TempDir() + "rarpred_snap_torn.rars";
    std::remove(path.c_str());
    armDriverFault(DriverFaultPoint::SnapshotTorn, kDriverFaultAnyIndex);
    ASSERT_TRUE(driver::writeSnapshot(path, 1, 3000, 0, engine).ok());
    EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::SnapshotTorn), 1u);

    // Half an image on disk: rejected by CRC/length validation.
    EXPECT_FALSE(driver::loadSnapshot(path).ok());
    std::remove(path.c_str());
}

// ------------------------------------- pumpSimulation epoch/restore

TEST_F(SnapshotTest, PumpRestoreResumesFromLastEpochByteIdentical)
{
    const Workload &w = findWorkload("li");
    Program prog = w.build(1);
    RecordedTrace part = RecordedTrace::record(prog, 20000);
    RecordedTrace full = RecordedTrace::record(prog, 30000);

    // Uninterrupted reference run.
    OooCpu clean(CpuConfig{}, timingConfig());
    {
        RecordedTraceSource src(full);
        EXPECT_EQ(drainTrace(src, clean), 30000u);
    }

    const std::string path =
        ::testing::TempDir() + "rarpred_snap_pump.rars";
    std::remove(path.c_str());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.snapshotPath = path;
    ctx.snapshotEvery = 8000;
    ctx.fingerprint = 77;
    ctx.counters = &counters;

    // "Interrupted" run: reaches 20000, last epoch snapshot at 16000,
    // then the process (pretend-)dies — the sink is discarded.
    {
        OooCpu doomed(CpuConfig{}, timingConfig());
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(part);
        EXPECT_EQ(driver::pumpSimulation(src, doomed), 20000u);
    }
    EXPECT_EQ(counters.snapshotsWritten.load(), 2u);

    // Restore into a fresh CPU over the full trace: fast-forwards to
    // 16000, restores, finishes — stats identical to the clean run.
    OooCpu resumed(CpuConfig{}, timingConfig());
    driver::SimContext rctx = ctx;
    rctx.restore = true;
    {
        driver::ScopedSimContext scope(rctx);
        RecordedTraceSource src(full);
        EXPECT_EQ(driver::pumpSimulation(src, resumed), 30000u);
    }
    EXPECT_EQ(counters.snapshotsRestored.load(), 1u);
    EXPECT_EQ(counters.restoreRejected.load(), 0u);
    EXPECT_EQ(cpuDump(clean), cpuDump(resumed));
    std::remove(path.c_str());
}

TEST_F(SnapshotTest, PumpRejectsFingerprintMismatchAndRunsFromScratch)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 20000);

    CloakingEngine clean(cloakingConfig());
    {
        RecordedTraceSource src(trace);
        drainTrace(src, clean);
    }

    const std::string path =
        ::testing::TempDir() + "rarpred_snap_stale.rars";
    std::remove(path.c_str());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.snapshotPath = path;
    ctx.snapshotEvery = 8000;
    ctx.fingerprint = 1;
    ctx.counters = &counters;
    {
        CloakingEngine doomed(cloakingConfig());
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(trace);
        driver::pumpSimulation(src, doomed);
    }
    ASSERT_GT(counters.snapshotsWritten.load(), 0u);

    // Same file, different job identity: must not restore.
    driver::SimContext rctx = ctx;
    rctx.restore = true;
    rctx.fingerprint = 2;
    CloakingEngine resumed(cloakingConfig());
    {
        driver::ScopedSimContext scope(rctx);
        RecordedTraceSource src(trace);
        EXPECT_EQ(driver::pumpSimulation(src, resumed), 20000u);
    }
    EXPECT_EQ(counters.snapshotsRestored.load(), 0u);
    EXPECT_GE(counters.restoreRejected.load(), 1u);
    EXPECT_EQ(cloakingDump(clean), cloakingDump(resumed));
    // The bad snapshot was quarantined aside (the from-scratch run
    // then writes fresh epoch snapshots under the original name).
    EXPECT_TRUE(std::ifstream(path + ".rejected").good());
    std::remove((path + ".rejected").c_str());
    std::remove(path.c_str());
}

TEST_F(SnapshotTest, PumpRejectsStaleSnapshotFaultAndStaysCorrect)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 20000);

    CloakingEngine clean(cloakingConfig());
    {
        RecordedTraceSource src(trace);
        drainTrace(src, clean);
    }

    const std::string path =
        ::testing::TempDir() + "rarpred_snap_stalefault.rars";
    std::remove(path.c_str());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.snapshotPath = path;
    ctx.snapshotEvery = 8000;
    ctx.fingerprint = 5;
    ctx.counters = &counters;

    // Every snapshot this run writes carries a wrong fingerprint, as
    // if left over from a different configuration.
    armDriverFault(DriverFaultPoint::SnapshotStale, kDriverFaultAnyIndex,
                   1000);
    {
        CloakingEngine doomed(cloakingConfig());
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(trace);
        driver::pumpSimulation(src, doomed);
    }
    disarmDriverFaults();

    driver::SimContext rctx = ctx;
    rctx.restore = true;
    CloakingEngine resumed(cloakingConfig());
    {
        driver::ScopedSimContext scope(rctx);
        RecordedTraceSource src(trace);
        EXPECT_EQ(driver::pumpSimulation(src, resumed), 20000u);
    }
    EXPECT_EQ(counters.snapshotsRestored.load(), 0u);
    EXPECT_GE(counters.restoreRejected.load(), 1u);
    EXPECT_EQ(cloakingDump(clean), cloakingDump(resumed));
    std::remove((path + ".rejected").c_str());
    std::remove(path.c_str());
}

// ------------------------------------------------ invariant auditor

TEST_F(SnapshotTest, AuditorDetectsAndFlushesDdtBitflip)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 20000);

    CloakingEngine engine(cloakingConfig());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.auditEvery = 1000;
    ctx.counters = &counters;

    // First state_bitflip fire targets the DDT (round-robin start).
    // Injecting exactly on an audit boundary gives a zero-instruction
    // window, so the corrupt entry cannot be evicted or overwritten
    // in the hint table before the audit observes it.
    armDriverFault(DriverFaultPoint::StateBitflip, 3000);
    {
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(trace);
        EXPECT_EQ(driver::pumpSimulation(src, engine), 20000u);
    }
    EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::StateBitflip), 1u);
    EXPECT_GT(counters.runs.load(), 0u);
    EXPECT_GE(counters.violations.load(), 1u);
    EXPECT_GE(counters.flushes.load(), 1u);
    // Repaired: the live structures satisfy their invariants again.
    EXPECT_TRUE(engine.detector().auditOk());
    EXPECT_TRUE(engine.dpnt().auditOk());
}

TEST_F(SnapshotTest, AuditorHealsEveryHintStructureRoundRobin)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 20000);

    CloakingEngine engine(cloakingConfig());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.auditEvery = 2000;
    ctx.counters = &counters;

    // Three arm/pump rounds, each injecting on an audit boundary: the
    // shared bitflip counter advances the round-robin across rounds,
    // so the DDT, the DPNT, and the synonym file get corrupted (and
    // flush-repaired) in turn.
    for (int round = 0; round < 3; ++round) {
        armDriverFault(DriverFaultPoint::StateBitflip, 4000);
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(trace);
        EXPECT_EQ(driver::pumpSimulation(src, engine), 20000u);
        EXPECT_EQ(driverFaultFireCount(DriverFaultPoint::StateBitflip),
                  1u);
    }
    EXPECT_EQ(counters.bitflipsInjected.load(), 3u);
    EXPECT_EQ(counters.violations.load(), 3u);
    EXPECT_EQ(counters.violations.load(), counters.flushes.load());
    EXPECT_TRUE(engine.detector().auditOk());
    EXPECT_TRUE(engine.dpnt().auditOk());
    const uint64_t bound = engine.dpnt().synonymsAllocated() + 1;
    EXPECT_TRUE(engine.synonymFile().auditOk(bound));
}

TEST_F(SnapshotTest, AuditorIsFreeOfFalsePositivesOnCleanRuns)
{
    const Workload &w = findWorkload("li");
    RecordedTrace trace = RecordedTrace::record(w.build(1), 20000);

    CloakingEngine audited(cloakingConfig());
    CloakingEngine plain(cloakingConfig());
    driver::AuditCounters counters;
    driver::SimContext ctx;
    ctx.auditEvery = 500;
    ctx.counters = &counters;
    {
        driver::ScopedSimContext scope(ctx);
        RecordedTraceSource src(trace);
        driver::pumpSimulation(src, audited);
    }
    {
        RecordedTraceSource src(trace);
        drainTrace(src, plain);
    }
    EXPECT_EQ(counters.runs.load(), 40u);
    EXPECT_EQ(counters.violations.load(), 0u);
    EXPECT_EQ(counters.flushes.load(), 0u);
    EXPECT_EQ(counters.crcMismatches.load(), 0u);
    // Auditing must never perturb simulation results.
    EXPECT_EQ(cloakingDump(audited), cloakingDump(plain));
}

// -------------------------------------------- journal durability

TEST_F(SnapshotTest, JournalCreateWritesDurableHeaderImmediately)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_snap_journal.rarj";
    std::remove(path.c_str());
    auto journal = driver::SweepJournal::create(path, 0xabcd, 8);
    ASSERT_TRUE(journal.ok()) << journal.status().toString();

    // The header is on disk (durably, via temp+fsync+rename) before
    // any append: a SIGKILL here can no longer leave a zero-length
    // journal that a later --resume chokes on.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    EXPECT_GE((size_t)in.tellg(), 32u);
    journal.value().reset(); // close before load
    auto replay = driver::SweepJournal::load(path);
    EXPECT_TRUE(replay.ok()) << replay.status().toString();
    std::remove(path.c_str());
}

// --------------------------------------------- end-to-end drills

TEST_F(SnapshotTest, EpochKillThenRestoreIsByteIdenticalEndToEnd)
{
    // The acceptance drill: SIGKILL a real bench_fig9_speedup run
    // right after its second epoch snapshot hits the disk, then
    // resume with --resume (journal) + --restore (snapshot) and
    // demand stdout byte-identical to an uninterrupted run.
    const std::string bench =
        std::string(RARPRED_BENCH_DIR) + "/bench_fig9_speedup";
    if (!std::ifstream(bench).good())
        GTEST_SKIP() << "bench binaries not built in this tree";

    const std::string dir = ::testing::TempDir();
    const std::string journal = dir + "rarpred_fig9_epoch.rarj";
    const std::string snapdir = dir + "rarpred_fig9_snapshots";
    const std::string out_clean = dir + "rarpred_fig9_epoch_clean.out";
    const std::string out_resumed =
        dir + "rarpred_fig9_epoch_resumed.out";
    const std::string err_resumed =
        dir + "rarpred_fig9_epoch_resumed.err";
    std::remove(journal.c_str());
    (void)std::system(("rm -rf " + snapdir + " && mkdir -p " + snapdir)
                          .c_str());

    const std::string args = " --serial --max-insts=20000 ";

    // Uninterrupted reference.
    int rc = std::system(
        (bench + args + ">" + out_clean + " 2>/dev/null").c_str());
    ASSERT_EQ(rc, 0);

    // Killed mid-job, right after epoch 2 (8000 insts) is durable.
    rc = std::system(("RARPRED_FAULT=epoch_kill:2 " + bench + args +
                      "--journal=" + journal + " --snapshot-dir=" +
                      snapdir + " --snapshot-every=4000 " +
                      ">/dev/null 2>/dev/null")
                         .c_str());
    EXPECT_NE(rc, 0);

    // The interrupted job left its epoch snapshot behind.
    rc = std::system(
        ("ls " + snapdir + "/*.rars >/dev/null 2>&1").c_str());
    EXPECT_EQ(rc, 0);

    // Resume: journal replays completed jobs, the snapshot restores
    // the interrupted one mid-flight.
    rc = std::system((bench + args + "--resume=" + journal +
                      " --restore --snapshot-dir=" + snapdir + " >" +
                      out_resumed + " 2>" + err_resumed)
                         .c_str());
    EXPECT_EQ(rc, 0);

    const std::string clean = readWholeFile(out_clean);
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, readWholeFile(out_resumed));

    // The restore is visible in the runner's stderr stats.
    const std::string err = readWholeFile(err_resumed);
    EXPECT_NE(err.find("driver.snapshot.restored 1"), std::string::npos)
        << err;

    std::remove(journal.c_str());
    (void)std::system(("rm -rf " + snapdir).c_str());
    std::remove(out_clean.c_str());
    std::remove(out_resumed.c_str());
    std::remove(err_resumed.c_str());
}

TEST_F(SnapshotTest, StateBitflipEndToEndCompletesWithAuditRepair)
{
    const std::string bench =
        std::string(RARPRED_BENCH_DIR) + "/bench_fig9_speedup";
    if (!std::ifstream(bench).good())
        GTEST_SKIP() << "bench binaries not built in this tree";

    const std::string dir = ::testing::TempDir();
    const std::string err_path = dir + "rarpred_fig9_bitflip.err";

    // Structural corruption injected mid-simulation: the run must
    // detect it, flush-to-safe, count it, and still exit 0.
    const int rc = std::system(
        ("RARPRED_FAULT=state_bitflip:6000 " + bench +
         " --serial --max-insts=20000 --audit-every=2000 "
         ">/dev/null 2>" +
         err_path)
            .c_str());
    EXPECT_EQ(rc, 0);

    const std::string err = readWholeFile(err_path);
    EXPECT_NE(err.find("driver.audit.runs"), std::string::npos) << err;
    size_t pos = err.find("driver.audit.violations ");
    ASSERT_NE(pos, std::string::npos) << err;
    pos += std::string("driver.audit.violations ").size();
    EXPECT_GE(std::atoi(err.c_str() + pos), 1) << err;
    pos = err.find("driver.audit.flushes ");
    ASSERT_NE(pos, std::string::npos) << err;
    pos += std::string("driver.audit.flushes ").size();
    EXPECT_GE(std::atoi(err.c_str() + pos), 1) << err;

    std::remove(err_path.c_str());
}

TEST_F(SnapshotTest, PipelineSpeedupStopsGracefullyOnSigterm)
{
    const std::string bin =
        std::string(RARPRED_EXAMPLES_DIR) + "/pipeline_speedup";
    if (!std::ifstream(bin).good())
        GTEST_SKIP() << "example binaries not built in this tree";

    // SIGTERM mid-sweep: the worker finishes its current job, stops
    // claiming new ones, and the process exits 130 with a --resume
    // hint — never a crash or a hang. The instruction count must keep
    // the sweep alive well past the 0.5 s kill delay even on a fast
    // host (trace generation alone outlasts it), while one job stays
    // small enough to drain within the test timeout under sanitizers.
    const int rc = std::system(
        ("sh -c '" + bin +
         " tom --serial --max-insts=8000000 >/dev/null 2>/dev/null & "
         "pid=$!; sleep 0.5; kill -TERM $pid; wait $pid'")
            .c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 130);
}

} // namespace
} // namespace rarpred
