/**
 * @file
 * Unit tests for the Synonym Rename Table (bypassing, Section 3.2).
 */

#include <gtest/gtest.h>

#include "core/srt.hh"

namespace rarpred {
namespace {

TEST(Srt, LookupMissWhenEmpty)
{
    SynonymRenameTable srt;
    EXPECT_FALSE(srt.lookup(5).has_value());
}

TEST(Srt, RenameThenLookup)
{
    SynonymRenameTable srt;
    srt.rename(5, 100);
    auto seq = srt.lookup(5);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(*seq, 100u);
}

TEST(Srt, NewestProducerWins)
{
    SynonymRenameTable srt;
    srt.rename(5, 100);
    srt.rename(5, 200);
    EXPECT_EQ(*srt.lookup(5), 200u);
}

TEST(Srt, RetireRemovesMatchingProducer)
{
    SynonymRenameTable srt;
    srt.rename(5, 100);
    srt.retire(5, 100);
    EXPECT_FALSE(srt.lookup(5).has_value());
}

TEST(Srt, RetireIgnoresStaleProducer)
{
    // A newer rename must survive the older producer's commit.
    SynonymRenameTable srt;
    srt.rename(5, 100);
    srt.rename(5, 200);
    srt.retire(5, 100);
    ASSERT_TRUE(srt.lookup(5).has_value());
    EXPECT_EQ(*srt.lookup(5), 200u);
}

TEST(Srt, DistinctSynonymsIndependent)
{
    SynonymRenameTable srt;
    srt.rename(5, 100);
    srt.rename(6, 200);
    EXPECT_EQ(*srt.lookup(5), 100u);
    EXPECT_EQ(*srt.lookup(6), 200u);
    srt.retire(5, 100);
    EXPECT_TRUE(srt.lookup(6).has_value());
}

TEST(Srt, FiniteCapacityEvicts)
{
    SynonymRenameTable srt({4, 0});
    for (Synonym s = 1; s <= 8; ++s)
        srt.rename(s, s * 10);
    EXPECT_FALSE(srt.lookup(1).has_value());
    EXPECT_TRUE(srt.lookup(8).has_value());
    EXPECT_EQ(srt.size(), 4u);
}

TEST(Srt, CountsRenames)
{
    SynonymRenameTable srt;
    srt.rename(1, 1);
    srt.rename(1, 2);
    srt.rename(2, 3);
    EXPECT_EQ(srt.renames(), 3u);
}

TEST(Srt, ClearEmptiesTable)
{
    SynonymRenameTable srt;
    srt.rename(1, 1);
    srt.clear();
    EXPECT_FALSE(srt.lookup(1).has_value());
    EXPECT_EQ(srt.size(), 0u);
}

} // namespace
} // namespace rarpred
