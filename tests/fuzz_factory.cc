/**
 * @file
 * Standalone factory fuzzer — the binary the nightly factory-fuzz CI
 * job drives (DESIGN.md §8).
 *
 * Draws `--cases` FuzzCases from `--seed` (seed, seed+1, ...), runs
 * each through the full checkFuzzCase() battery (build determinism,
 * fault-free + faulted safety oracle, serial-vs-runSweep stats
 * equivalence), and exits 0 iff every case passes. On the first
 * failure it greedily minimizes the case, prints the shrunken
 * reproducer to stdout in the .case format, and (with `--repro-out`)
 * writes it to a file ready to be checked into tests/corpus/.
 *
 * Usage:
 *   fuzz_factory [--cases=N] [--seed=S] [--max-insts=M]
 *                [--repro-out=PATH] [--replay=CASEFILE]
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "workload/fuzz.hh"

namespace rarpred {
namespace {

struct Options
{
    uint64_t cases = 50;
    uint64_t seed = 1;
    uint64_t maxInsts = 0; ///< 0 = keep each case's drawn budget
    std::string reproOut;
    std::string replay;
};

void
usage(FILE *out)
{
    std::fprintf(out,
                 "usage: fuzz_factory [--cases=N] [--seed=S]\n"
                 "                    [--max-insts=M] [--repro-out=PATH]\n"
                 "                    [--replay=CASEFILE]\n"
                 "\n"
                 "Runs N randomly drawn factory programs through the\n"
                 "determinism / safety-oracle / sweep-equivalence\n"
                 "battery. Exit 0 iff all pass; on failure prints a\n"
                 "minimized reproducer (.case format).\n");
}

bool
parseU64(const char *text, uint64_t *out)
{
    char *end = nullptr;
    *out = std::strtoull(text, &end, 10);
    return end != nullptr && end != text && *end == '\0';
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (const char *v = value("--cases=")) {
            if (!parseU64(v, &opt->cases) || opt->cases == 0)
                return false;
        } else if (const char *v = value("--seed=")) {
            if (!parseU64(v, &opt->seed))
                return false;
        } else if (const char *v = value("--max-insts=")) {
            if (!parseU64(v, &opt->maxInsts))
                return false;
        } else if (const char *v = value("--repro-out=")) {
            opt->reproOut = v;
        } else if (const char *v = value("--replay=")) {
            opt->replay = v;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

/** Minimize, report, and persist one failing case. @return 1. */
int
reportFailure(const FuzzCase &failing, const std::string &first_failure,
              const Options &opt)
{
    std::fprintf(stderr, "FAIL %s: %s\n",
                 fuzzCaseName(failing).c_str(), first_failure.c_str());
    std::fprintf(stderr, "minimizing...\n");

    unsigned shrinks = 0;
    const FuzzCase small = minimizeFuzzCase(
        failing,
        [](const FuzzCase &c) { return !checkFuzzCase(c).passed; },
        &shrinks);
    const FuzzVerdict v = checkFuzzCase(small);
    std::fprintf(stderr, "minimized with %u shrinks: %s\n", shrinks,
                 v.passed ? "(failure no longer reproduces?)"
                          : v.failure.c_str());

    const std::string repro = formatFuzzCase(small);
    std::fprintf(stdout, "---- minimized reproducer ----\n%s"
                         "------------------------------\n",
                 repro.c_str());
    if (!opt.reproOut.empty()) {
        std::ofstream os(opt.reproOut);
        os << repro;
        if (os.good())
            std::fprintf(stderr, "reproducer written to %s\n",
                         opt.reproOut.c_str());
        else
            std::fprintf(stderr, "could not write %s\n",
                         opt.reproOut.c_str());
    }
    return 1;
}

int
replayOne(const Options &opt)
{
    std::ifstream is(opt.replay);
    if (!is.good()) {
        std::fprintf(stderr, "cannot read %s\n", opt.replay.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const Result<FuzzCase> c = parseFuzzCase(buf.str());
    if (!c.ok()) {
        std::fprintf(stderr, "bad case file %s: %s\n",
                     opt.replay.c_str(),
                     c.status().toString().c_str());
        return 2;
    }
    const FuzzVerdict v = checkFuzzCase(*c);
    std::fprintf(stderr, "%s %s (%" PRIu64 " insts)%s%s\n",
                 v.passed ? "PASS" : "FAIL",
                 fuzzCaseName(*c).c_str(), v.instructions,
                 v.passed ? "" : ": ",
                 v.passed ? "" : v.failure.c_str());
    return v.passed ? 0 : 1;
}

int
run(const Options &opt)
{
    if (!opt.replay.empty())
        return replayOne(opt);

    uint64_t total_insts = 0;
    for (uint64_t i = 0; i < opt.cases; ++i) {
        FuzzCase c = drawFuzzCase(opt.seed + i);
        if (opt.maxInsts != 0)
            c.maxInsts = opt.maxInsts;
        const FuzzVerdict v = checkFuzzCase(c);
        total_insts += v.instructions;
        if (!v.passed)
            return reportFailure(c, v.failure, opt);
        if ((i + 1) % 10 == 0 || i + 1 == opt.cases)
            std::fprintf(stderr,
                         "  %" PRIu64 "/%" PRIu64 " cases ok "
                         "(%" PRIu64 " insts checked)\n",
                         i + 1, opt.cases, total_insts);
    }
    std::fprintf(stderr, "PASS: %" PRIu64 " cases, %" PRIu64
                         " instructions checked\n",
                 opt.cases, total_insts);
    return 0;
}

} // namespace
} // namespace rarpred

int
main(int argc, char **argv)
{
    rarpred::Options opt;
    if (!rarpred::parseArgs(argc, argv, &opt)) {
        rarpred::usage(stderr);
        return 2;
    }
    return rarpred::run(opt);
}
