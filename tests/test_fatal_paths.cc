/**
 * @file
 * Error-policy tests, both halves of the discipline documented in
 * common/status.hh:
 *  - entry-point helpers and internal invariants still die loudly
 *    (fatal()/panic() death tests);
 *  - library-level failure paths — bad trace files, unknown
 *    workloads, invalid configs — are *recoverable*: they must return
 *    Status and must NOT exit the process.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/logging.hh"
#include "common/status.hh"
#include "isa/program_builder.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

TEST(FatalPaths, UndefinedLabelIsFatal)
{
    EXPECT_EXIT(
        {
            ProgramBuilder b("t");
            b.jump("nowhere");
            b.halt();
            (void)b.build();
        },
        ::testing::ExitedWithCode(1), "undefined label");
}

TEST(FatalPaths, DuplicateLabelIsFatal)
{
    EXPECT_EXIT(
        {
            ProgramBuilder b("t");
            b.label("x");
            b.nop();
            b.label("x");
        },
        ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(FatalPaths, UnknownWorkloadIsFatalInConvenienceWrapper)
{
    // findWorkload() is the CLI/test convenience; the recoverable
    // library API is lookupWorkload(), tested below.
    EXPECT_EXIT((void)findWorkload("no-such-benchmark"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(FatalPaths, AssertionPanicsAbort)
{
    EXPECT_DEATH(rarpred_assert(1 == 2), "assertion failed");
}

// --- recoverable library paths ---------------------------------------

TEST(RecoverablePaths, UnknownWorkloadIsNotFoundStatus)
{
    auto found = lookupWorkload("no-such-benchmark");
    ASSERT_FALSE(found.ok());
    EXPECT_EQ(found.status().code(), StatusCode::NotFound);
    EXPECT_NE(found.status().message().find("no-such-benchmark"),
              std::string::npos);
}

TEST(RecoverablePaths, KnownWorkloadLooksUp)
{
    auto found = lookupWorkload("gcc");
    ASSERT_TRUE(found.ok());
    EXPECT_EQ((*found)->fullName, "126.gcc");
}

TEST(RecoverablePaths, MissingTraceFileIsIoErrorNotExit)
{
    auto reader = TraceFileReader::open("/nonexistent/path/trace.rar");
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::IoError);

    // The constructor form must not exit either: it latches the error.
    TraceFileReader direct("/nonexistent/path/trace.rar");
    EXPECT_FALSE(direct.status().ok());
    DynInst di;
    EXPECT_FALSE(direct.next(di));
}

TEST(RecoverablePaths, GarbageTraceFileIsCorruptionNotExit)
{
    const std::string path = ::testing::TempDir() + "rarpred_garbage.rar";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    auto reader = TraceFileReader::open(path);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("not a rarpred trace"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(RecoverablePaths, UnwritableTracePathIsIoErrorNotExit)
{
    auto writer = TraceFileWriter::open("/nonexistent/dir/out.rar");
    ASSERT_FALSE(writer.ok());
    EXPECT_EQ(writer.status().code(), StatusCode::IoError);
}

} // namespace
} // namespace rarpred
