/**
 * @file
 * Death tests: user-error paths must fail fast with a clear message
 * (the fatal()/panic() discipline of common/logging.hh).
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/logging.hh"
#include "isa/program_builder.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

TEST(FatalPaths, UndefinedLabelIsFatal)
{
    EXPECT_EXIT(
        {
            ProgramBuilder b("t");
            b.jump("nowhere");
            b.halt();
            (void)b.build();
        },
        ::testing::ExitedWithCode(1), "undefined label");
}

TEST(FatalPaths, DuplicateLabelIsFatal)
{
    EXPECT_EXIT(
        {
            ProgramBuilder b("t");
            b.label("x");
            b.nop();
            b.label("x");
        },
        ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(FatalPaths, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT((void)findWorkload("no-such-benchmark"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(FatalPaths, MissingTraceFileIsFatal)
{
    EXPECT_EXIT(TraceFileReader reader("/nonexistent/path/trace.rar"),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST(FatalPaths, GarbageTraceFileIsFatal)
{
    const std::string path =
        ::testing::TempDir() + "rarpred_garbage.rar";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    EXPECT_EXIT(TraceFileReader reader(path),
                ::testing::ExitedWithCode(1), "not a rarpred trace");
    std::remove(path.c_str());
}

TEST(FatalPaths, AssertionPanicsAbort)
{
    EXPECT_DEATH(rarpred_assert(1 == 2), "assertion failed");
}

} // namespace
} // namespace rarpred
