/**
 * @file
 * Unit tests for the branch predictors and return address stack.
 */

#include <gtest/gtest.h>

#include "predictor/branch_predictor.hh"

namespace rarpred {
namespace {

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 4; ++i)
        p.update(0x100, true);
    EXPECT_TRUE(p.predict(0x100));
    for (int i = 0; i < 8; ++i)
        p.update(0x100, false);
    EXPECT_FALSE(p.predict(0x100));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 4; ++i)
        p.update(0x100, true);
    p.update(0x100, false); // one not-taken
    EXPECT_TRUE(p.predict(0x100));
}

TEST(Bimodal, SeparateCountersPerPc)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 4; ++i) {
        p.update(0x100, true);
        p.update(0x104, false);
    }
    EXPECT_TRUE(p.predict(0x100));
    EXPECT_FALSE(p.predict(0x104));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // Bimodal cannot learn strict alternation, gshare can.
    GsharePredictor p(1024, 8);
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        if (i >= 100 && p.predict(0x100) == taken)
            ++correct;
        p.update(0x100, taken);
    }
    EXPECT_GT(correct, 95);
}

TEST(Combined, TracksBetterComponent)
{
    CombinedPredictor p(1024, 8);
    // Strict alternation: gshare wins, the chooser should migrate.
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        if (i >= 200 && p.predict(0x100) == taken)
            ++correct;
        p.update(0x100, taken);
    }
    EXPECT_GT(correct, 190);
}

TEST(Combined, PredictAndUpdateCountsAccuracy)
{
    CombinedPredictor p(1024, 8);
    for (int i = 0; i < 100; ++i)
        p.predictAndUpdate(0x100, true);
    EXPECT_EQ(p.lookups(), 100u);
    EXPECT_GT(p.correct(), 90u);
}

TEST(Combined, BiasedBranchesHighAccuracy)
{
    CombinedPredictor p(16384, 12);
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        bool taken = (i % 10) != 0; // 90% taken
        if (p.predictAndUpdate(0x200, taken))
            ++correct;
    }
    EXPECT_GT(correct, 850);
}

TEST(Ras, PushPopMatches)
{
    ReturnAddressStack ras(4);
    ras.push(0x104);
    ras.push(0x208);
    EXPECT_EQ(ras.pop(), 0x208u);
    EXPECT_EQ(ras.pop(), 0x104u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300); // drops 0x100
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, SizeTracksDepth)
{
    ReturnAddressStack ras(8);
    EXPECT_EQ(ras.size(), 0u);
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(ras.size(), 2u);
    ras.pop();
    EXPECT_EQ(ras.size(), 1u);
}

} // namespace
} // namespace rarpred
