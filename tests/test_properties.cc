/**
 * @file
 * Property-based tests: randomized traces are checked against
 * brute-force reference models, and configuration sweeps are checked
 * for the invariants the design guarantees (detection monotonicity,
 * stat conservation, timing sanity).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "core/cloaking.hh"
#include "core/ddt.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sim_job_runner.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

/** A random mixed load/store trace over a small address universe. */
std::vector<DynInst>
randomTrace(uint64_t seed, size_t length, size_t num_addrs,
            size_t num_pcs, double store_frac)
{
    Rng rng(seed);
    std::vector<DynInst> trace(length);
    for (size_t i = 0; i < length; ++i) {
        DynInst &di = trace[i];
        di.seq = i;
        di.pc = (rng.below(num_pcs) + 1) * 4;
        di.eaddr = (rng.below(num_addrs) + 1) * 8;
        di.value = rng.below(64);
        di.op = rng.chance(store_frac) ? Opcode::Sw : Opcode::Lw;
        if (di.isLoad())
            di.dst = 1;
        else
            di.src2 = 1;
        di.src1 = 2;
    }
    return trace;
}

/**
 * Brute-force reference for unbounded dependence detection, applying
 * the Section 3.1 recording rules directly.
 */
class ReferenceDetector
{
  public:
    std::optional<Dependence>
    onLoad(uint64_t pc, uint64_t addr)
    {
        auto it = last_.find(addr >> 3);
        if (it == last_.end()) {
            last_[addr >> 3] = {false, pc};
            return std::nullopt;
        }
        if (it->second.isStore)
            return Dependence{DepType::Raw, it->second.pc, pc};
        return Dependence{DepType::Rar, it->second.pc, pc};
    }

    void
    onStore(uint64_t pc, uint64_t addr)
    {
        last_[addr >> 3] = {true, pc};
    }

  private:
    struct Rec
    {
        bool isStore;
        uint64_t pc;
    };
    std::map<uint64_t, Rec> last_;
};

class RandomTraceTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomTraceTest, UnboundedDetectorMatchesReference)
{
    auto trace = randomTrace(GetParam(), 20000, 64, 32, 0.25);
    DdtConfig config;
    config.entries = 0;
    DependenceDetector dut(config);
    ReferenceDetector ref;
    for (const auto &di : trace) {
        if (di.isStore()) {
            dut.onStore(di.pc, di.eaddr);
            ref.onStore(di.pc, di.eaddr);
            continue;
        }
        auto got = dut.onLoad(di.pc, di.eaddr);
        auto want = ref.onLoad(di.pc, di.eaddr);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got) {
            ASSERT_EQ(got->type, want->type);
            ASSERT_EQ(got->sourcePc, want->sourcePc);
            ASSERT_EQ(got->sinkPc, want->sinkPc);
        }
    }
}

TEST_P(RandomTraceTest, BoundedDetectionIsSubsetOfUnbounded)
{
    // Whatever a finite DDT detects, the unbounded one detects the
    // same dependence for the same dynamic load (the finite table can
    // only forget).
    auto trace = randomTrace(GetParam(), 20000, 256, 32, 0.2);
    DdtConfig small_config;
    small_config.entries = 16;
    DdtConfig big_config;
    big_config.entries = 0;
    DependenceDetector small(small_config), big(big_config);
    for (const auto &di : trace) {
        if (di.isStore()) {
            small.onStore(di.pc, di.eaddr);
            big.onStore(di.pc, di.eaddr);
            continue;
        }
        auto s = small.onLoad(di.pc, di.eaddr);
        auto b = big.onLoad(di.pc, di.eaddr);
        if (s && b) {
            // When both detect, the finite table may know a *newer*
            // chain head (it forgot the old one) but never an older
            // one of the other type for RAW.
            if (s->type == DepType::Raw && b->type == DepType::Raw) {
                ASSERT_EQ(s->sourcePc, b->sourcePc);
            }
        }
        if (s && s->type == DepType::Raw) {
            // A RAW seen by the small table implies the big table saw
            // the same store (stores are never silently replaced).
            ASSERT_TRUE(b.has_value());
            ASSERT_EQ(b->type, DepType::Raw);
        }
    }
}

TEST_P(RandomTraceTest, CloakingStatsAreConserved)
{
    auto trace = randomTrace(GetParam(), 30000, 128, 64, 0.3);
    CloakingConfig config;
    config.ddt.entries = 64;
    CloakingEngine engine(config);
    uint64_t loads = 0, stores = 0;
    for (const auto &di : trace) {
        engine.onInst(di);
        loads += di.isLoad();
        stores += di.isStore();
    }
    const auto &s = engine.stats();
    EXPECT_EQ(s.loads, loads);
    EXPECT_EQ(s.stores, stores);
    // Covered + mispredicted loads cannot exceed all loads.
    EXPECT_LE(s.covered() + s.mispredicted(), s.loads);
    // Detections cannot exceed load count.
    EXPECT_LE(s.detectedRaw + s.detectedRar, s.loads);
}

TEST_P(RandomTraceTest, OneBitCoverageBoundsAdaptiveCoverage)
{
    // The non-adaptive predictor is an upper bound on used
    // speculations (it never locks out).
    auto trace = randomTrace(GetParam(), 30000, 64, 32, 0.2);
    CloakingConfig naive_config, adaptive_config;
    naive_config.ddt.entries = 128;
    naive_config.dpnt.confidence = ConfidenceKind::OneBitNonAdaptive;
    adaptive_config.ddt.entries = 128;
    adaptive_config.dpnt.confidence = ConfidenceKind::TwoBitAdaptive;
    CloakingEngine naive(naive_config), adaptive(adaptive_config);
    for (const auto &di : trace) {
        naive.onInst(di);
        adaptive.onInst(di);
    }
    EXPECT_GE(naive.stats().covered() + naive.stats().mispredicted(),
              adaptive.stats().covered() +
                  adaptive.stats().mispredicted());
}

TEST_P(RandomTraceTest, TimingModelBasicSanity)
{
    auto trace = randomTrace(GetParam(), 20000, 64, 64, 0.25);
    CpuConfig config;
    OooCpu cpu(config, {});
    uint64_t prev_cycles = 0;
    for (const auto &di : trace) {
        cpu.onInst(di);
        // Committed-cycle counter is monotonic.
        ASSERT_GE(cpu.stats().cycles, prev_cycles);
        prev_cycles = cpu.stats().cycles;
    }
    const auto &s = cpu.stats();
    EXPECT_EQ(s.instructions, trace.size());
    // IPC within physical bounds.
    EXPECT_LE(s.ipc(), 8.0);
    EXPECT_GT(s.ipc(), 0.01);
}

TEST_P(RandomTraceTest, CloakingNeverSlowsTimingMuch)
{
    // With selective recovery the mechanism's worst case is bounded:
    // correct speculation only helps, wrong speculation costs one
    // extra cycle per dependent chain.
    auto trace = randomTrace(GetParam(), 20000, 32, 32, 0.3);
    CpuConfig config;
    OooCpu base(config, {});
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.ddt.entries = 128;
    OooCpu mech(config, cloak);
    for (const auto &di : trace) {
        base.onInst(di);
        mech.onInst(di);
    }
    EXPECT_LT((double)mech.stats().cycles,
              1.05 * (double)base.stats().cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ------------------------------------------------- sweep invariants

class DdtSweepProperty
    : public ::testing::TestWithParam<std::tuple<const char *, size_t>>
{
};

TEST_P(DdtSweepProperty, DetectionGrowsWithDdtSize)
{
    const auto [abbrev, size] = GetParam();
    auto detected = [&](size_t entries) {
        CloakingConfig config;
        config.ddt.entries = entries;
        CloakingEngine engine(config);
        Program p = findWorkload(abbrev).build(1);
        MicroVM vm(p);
        vm.run(engine, 2'000'000ull);
        return engine.stats().detectedRaw + engine.stats().detectedRar;
    };
    // Detection with a larger table is within epsilon of never being
    // worse (LRU aliasing can cost a hair on pathological streams).
    EXPECT_GE((double)detected(size * 4) * 1.02 + 1000,
              (double)detected(size));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DdtSweepProperty,
    ::testing::Combine(::testing::Values("li", "com", "tom", "fp*"),
                       ::testing::Values(32, 128)));

// ------------------------------------- driver/serial equivalence

void
expectEqualCpuStats(const CpuStats &a, const CpuStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.memOrderViolations, b.memOrderViolations);
    EXPECT_EQ(a.valueSpecUsed, b.valueSpecUsed);
    EXPECT_EQ(a.valueSpecCorrect, b.valueSpecCorrect);
    EXPECT_EQ(a.valueSpecWrong, b.valueSpecWrong);
    EXPECT_EQ(a.squashes, b.squashes);
    EXPECT_EQ(a.specCyclesSaved, b.specCyclesSaved);
}

class DriverEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DriverEquivalence, RunnerJobMatchesSerialOooExecution)
{
    // For any random workload/config pair, executing the OoO core
    // serially off the MicroVM and executing it as a SimJobRunner
    // job replaying the memoized trace produce identical Stats.
    Rng rng(GetParam());
    const auto &workloads = allWorkloads();
    const Workload &w = workloads[rng.below(workloads.size())];

    CpuConfig config;
    config.memDep = (MemDepPolicy)rng.below(3);
    CloakTimingConfig cloak;
    if (rng.chance(0.7)) {
        cloak.enabled = true;
        cloak.engine.mode =
            rng.chance(0.5) ? CloakingMode::RawPlusRar
                            : CloakingMode::RawOnly;
        cloak.engine.ddt.entries = 1ull << rng.range(5, 9);
        cloak.engine.dpnt.geometry = {8192, 2};
        cloak.engine.sf = {1024, 2};
        cloak.recovery = (RecoveryModel)rng.below(3);
        cloak.bypassing = rng.chance(0.5);
    }
    const uint64_t kMax = 120'000;

    // Serial reference: MicroVM straight into the core.
    Program prog = w.build(1);
    MicroVM vm(prog);
    OooCpu serial(config, cloak);
    vm.run(serial, kMax);

    // Driver path: one job replaying the cached recorded trace.
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = kMax;
    driver::SimJobRunner runner(rc);
    CpuStats job_stats;
    std::vector<driver::JobSpec> jobs;
    driver::JobSpec job;
    job.workload = &w;
    job.configHash = GetParam();
    job.run = [&](TraceSource &trace, Rng &) {
        OooCpu cpu(config, cloak);
        drainTrace(trace, cpu);
        job_stats = cpu.stats();
        return Status{};
    };
    jobs.push_back(std::move(job));
    EXPECT_TRUE(runner.run(jobs).ok());

    expectEqualCpuStats(serial.stats(), job_stats);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606));

} // namespace
} // namespace rarpred
