/**
 * @file
 * Regression battery for the shared EINTR-safe I/O helpers
 * (common/io_util.hh). The interesting cases are the ones ad-hoc
 * loops historically got wrong:
 *  - real EINTRs: a no-SA_RESTART signal handler interrupts the
 *    blocked syscall mid-transfer (exactly what the worker pool's
 *    SIGCHLD does to the daemon) and the helper must retry, not
 *    fail or return short;
 *  - real short writes: a transfer much larger than the socketpair
 *    buffer forces write()/send() to take many bites;
 *  - EOF discipline: readFull returns the short byte count (the
 *    caller interprets it), readChunk/recvChunk return 0.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/io_util.hh"

namespace rarpred {
namespace {

/** Big enough that one write()/send() cannot take it whole. */
constexpr size_t kBigTransfer = 4u << 20;

std::vector<uint8_t>
patternedBytes(size_t n)
{
    std::vector<uint8_t> bytes(n);
    for (size_t i = 0; i < n; ++i)
        bytes[i] = (uint8_t)(i * 131 + (i >> 8));
    return bytes;
}

/** Deliberately empty: exists only so SIGUSR1 interrupts syscalls.
 *  Installed *without* SA_RESTART, so blocked reads/writes really
 *  return EINTR instead of being transparently restarted. */
void
onUsr1(int)
{
}

class NoRestartUsr1
{
  public:
    NoRestartUsr1()
    {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = onUsr1;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // no SA_RESTART: force real EINTRs
        sigaction(SIGUSR1, &sa, &prev_);
    }
    ~NoRestartUsr1() { sigaction(SIGUSR1, &prev_, nullptr); }

  private:
    struct sigaction prev_;
};

/** Pepper @p target with SIGUSR1 until @p done, forcing EINTRs into
 *  whatever syscall it is blocked in. */
void
signalStorm(pthread_t target, const std::atomic<bool> &done)
{
    while (!done.load()) {
        pthread_kill(target, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

// ------------------------------------------------------ happy paths

TEST(IoUtil, ReadFullWriteFullRoundTripOverAPipe)
{
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    const std::vector<uint8_t> sent = patternedBytes(kBigTransfer);

    // The transfer dwarfs the pipe buffer: writeFull must loop over
    // many short writes while the reader drains concurrently.
    std::thread writer([&] {
        EXPECT_TRUE(writeFull(p[1], sent.data(), sent.size()).ok());
        ::close(p[1]);
    });
    std::vector<uint8_t> got(sent.size());
    auto n = readFull(p[0], got.data(), got.size());
    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, sent.size());
    EXPECT_EQ(got, sent);
    writer.join();
    ::close(p[0]);
}

TEST(IoUtil, SendFullRecvChunkRoundTripOverASocketpair)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const std::vector<uint8_t> sent = patternedBytes(kBigTransfer);

    std::thread writer([&] {
        EXPECT_TRUE(sendFull(sv[1], sent.data(), sent.size()).ok());
        ::shutdown(sv[1], SHUT_WR);
    });
    std::vector<uint8_t> got;
    uint8_t buf[65536];
    for (;;) {
        auto n = recvChunk(sv[0], buf, sizeof(buf));
        ASSERT_TRUE(n.ok()) << n.status().toString();
        if (*n == 0)
            break; // EOF
        got.insert(got.end(), buf, buf + *n);
    }
    EXPECT_EQ(got, sent);
    writer.join();
    ::close(sv[0]);
    ::close(sv[1]);
}

// ------------------------------------------------------------ EINTR

TEST(IoUtil, ReadFullSurvivesASignalStorm)
{
    NoRestartUsr1 handler;
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    const std::vector<uint8_t> sent = patternedBytes(kBigTransfer);

    std::atomic<bool> done{false};
    std::atomic<bool> reader_ready{false};
    pthread_t reader_tid{};
    std::vector<uint8_t> got(sent.size());
    Result<size_t> n = (size_t)0;

    std::thread reader([&] {
        reader_tid = pthread_self();
        reader_ready.store(true);
        // Blocks with an empty pipe: the first EINTRs hit a read()
        // that has transferred nothing at all.
        n = readFull(p[0], got.data(), got.size());
    });
    while (!reader_ready.load())
        std::this_thread::yield();
    std::thread storm([&] { signalStorm(reader_tid, done); });

    // Trickle the data so the reader keeps re-blocking mid-transfer.
    const size_t kSlice = 128 * 1024;
    for (size_t off = 0; off < sent.size(); off += kSlice) {
        const size_t len = std::min(kSlice, sent.size() - off);
        ASSERT_TRUE(writeFull(p[1], sent.data() + off, len).ok());
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    reader.join();
    done.store(true);
    storm.join();

    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, sent.size());
    EXPECT_EQ(got, sent);
    ::close(p[0]);
    ::close(p[1]);
}

TEST(IoUtil, SendFullSurvivesASignalStorm)
{
    NoRestartUsr1 handler;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const std::vector<uint8_t> sent = patternedBytes(kBigTransfer);

    std::atomic<bool> done{false};
    std::atomic<bool> writer_ready{false};
    pthread_t writer_tid{};
    Status sent_status;

    std::thread writer([&] {
        writer_tid = pthread_self();
        writer_ready.store(true);
        // Blocks once the socket buffer fills; the storm interrupts
        // it there, mid-transfer.
        sent_status = sendFull(sv[1], sent.data(), sent.size());
    });
    while (!writer_ready.load())
        std::this_thread::yield();
    std::thread storm([&] { signalStorm(writer_tid, done); });

    std::vector<uint8_t> got(sent.size());
    auto n = readFull(sv[0], got.data(), got.size());
    writer.join();
    done.store(true);
    storm.join();

    EXPECT_TRUE(sent_status.ok()) << sent_status.toString();
    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, sent.size());
    EXPECT_EQ(got, sent);
    ::close(sv[0]);
    ::close(sv[1]);
}

// -------------------------------------------------------------- EOF

TEST(IoUtil, ReadFullReturnsShortCountOnEof)
{
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    const uint8_t partial[3] = {7, 8, 9};
    ASSERT_TRUE(writeFull(p[1], partial, sizeof(partial)).ok());
    ::close(p[1]); // peer dies mid-message

    uint8_t buf[16] = {};
    auto n = readFull(p[0], buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, sizeof(partial)); // short, not an error
    EXPECT_EQ(std::memcmp(buf, partial, sizeof(partial)), 0);

    // At true EOF the count is 0 — same contract as readChunk.
    n = readFull(p[0], buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    ::close(p[0]);
}

TEST(IoUtil, ChunkReadersReturnZeroOnEof)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ::shutdown(sv[1], SHUT_WR);
    uint8_t buf[8];
    auto n = recvChunk(sv[0], buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, 0u);
    ::close(sv[0]);
    ::close(sv[1]);

    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    ::close(p[1]);
    n = readChunk(p[0], buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().toString();
    EXPECT_EQ(*n, 0u);
    ::close(p[0]);
}

TEST(IoUtil, SendFullToAClosedPeerIsAnErrorNotASignal)
{
    // MSG_NOSIGNAL contract: EPIPE surfaces as a Status even without
    // a process-wide SIGPIPE ignore. If this raised SIGPIPE the test
    // binary would die here.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ::close(sv[0]);
    const std::vector<uint8_t> bytes = patternedBytes(kBigTransfer);
    const Status s = sendFull(sv[1], bytes.data(), bytes.size());
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::IoError);
    ::close(sv[1]);
}

TEST(IoUtil, BadFdIsIoError)
{
    uint8_t buf[4] = {};
    EXPECT_EQ(readFull(-1, buf, sizeof(buf)).status().code(),
              StatusCode::IoError);
    EXPECT_EQ(writeFull(-1, buf, sizeof(buf)).code(),
              StatusCode::IoError);
    EXPECT_EQ(sendFull(-1, buf, sizeof(buf)).code(),
              StatusCode::IoError);
    EXPECT_EQ(readChunk(-1, buf, sizeof(buf)).status().code(),
              StatusCode::IoError);
    EXPECT_EQ(recvChunk(-1, buf, sizeof(buf)).status().code(),
              StatusCode::IoError);
}

TEST(IoUtil, ZeroLengthTransfersAreNoOps)
{
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    uint8_t byte = 0;
    auto n = readFull(p[0], &byte, 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    EXPECT_TRUE(writeFull(p[1], &byte, 0).ok());
    ::close(p[0]);
    ::close(p[1]);
}

} // namespace
} // namespace rarpred
