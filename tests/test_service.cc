/**
 * @file
 * End-to-end tests of the resident sweep service: admission control
 * and shedding, deadline propagation, the circuit breaker, store
 * corruption healing, client-disconnect survival, graceful drain —
 * all against an in-process SweepDaemon — plus subprocess drills
 * against the real rarpredd binary, including the acceptance
 * contract: kill -9 mid-sweep, restart over the same store, replay
 * byte-identically with store hits. (The long-running chaos soak
 * lives in test_service_soak.cc under the "slow" label.)
 *
 * The subprocess tests self-skip when the service binaries are not
 * built in this tree (RARPRED_SERVICE_DIR).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "cpu/ooo_cpu.hh"
#include "driver/sim_snapshot.hh"
#include "driver/trace_cache.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"
#include "service_test_util.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

namespace rarpred::service {
namespace {

using namespace std::chrono_literals;

class ServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override { disarmDriverFaults(); }
};

// -------------------------------------------------- basic lifecycle

TEST_F(ServiceTest, StatusProbeReportsReady)
{
    Paths paths("status");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    const ServiceClient client(paths.socket);
    auto reply = client.status();
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->ready, 1);
    EXPECT_EQ(reply->draining, 0);
    EXPECT_EQ(reply->counters.admitted, 0u);
    daemon.stop();

    // After the drain the socket is gone; probes are Unavailable.
    EXPECT_EQ(client.status().status().code(),
              StatusCode::Unavailable);
}

TEST_F(ServiceTest, SweepMatchesDirectSimulation)
{
    Paths paths("direct");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    const SweepRequestMsg req = smallRequest();
    const ServiceClient client(paths.socket);
    auto reply = client.sweep(req);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    ASSERT_EQ(reply->rows.size(), 2u);
    EXPECT_EQ(reply->done.errors, 0u);

    // The daemon's answer must equal running the same cells here.
    driver::TraceCache cache;
    const auto trace =
        cache.get(findWorkload("li"), req.scale, req.maxInsts);
    for (size_t ci = 0; ci < req.configs.size(); ++ci) {
        RecordedTraceSource replay(*trace);
        CpuConfig core;
        core.memDep = req.configs[ci].memDepPolicy();
        OooCpu cpu(core, req.configs[ci].toTimingConfig());
        driver::pumpSimulation(replay, cpu);
        const CpuStats want = cpu.stats();
        const CpuStats &got = reply->rows[ci].stats;
        EXPECT_EQ(got.instructions, want.instructions) << ci;
        EXPECT_EQ(got.cycles, want.cycles) << ci;
        EXPECT_EQ(got.loads, want.loads) << ci;
        EXPECT_EQ(got.valueSpecUsed, want.valueSpecUsed) << ci;
    }
    daemon.stop();
}

TEST_F(ServiceTest, WarmStoreServesByteIdenticalReplies)
{
    Paths paths("warm");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    const SweepRequestMsg req = smallRequest();
    const ServiceClient client(paths.socket);
    auto cold = client.sweep(req);
    ASSERT_TRUE(cold.ok()) << cold.status().toString();
    EXPECT_EQ(cold->done.storeHits, 0u);

    auto warm = client.sweep(req);
    ASSERT_TRUE(warm.ok()) << warm.status().toString();
    EXPECT_EQ(warm->done.storeHits, 2u);
    for (const RowMsg &row : warm->rows)
        EXPECT_EQ(row.fromStore, 1);

    // The caller-visible table is identical cold vs warm: reply
    // provenance must never leak into the deterministic artifact.
    EXPECT_EQ(ServiceClient::replyTable(req, *cold),
              ServiceClient::replyTable(req, *warm));

    const auto counters = daemon.counters();
    EXPECT_EQ(counters.storeHit, 2u);
    EXPECT_EQ(counters.storeMiss, 2u);
    EXPECT_EQ(counters.cellsSimulated, 2u);
    daemon.stop();
}

// ----------------------------------------------- store corruption

TEST_F(ServiceTest, CorruptStoreEntryIsHealedByResimulation)
{
    Paths paths("heal");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // The first durable write is bit-flipped after its CRC is
    // sealed: the entry lands corrupt on disk.
    armDriverFault(DriverFaultPoint::StoreCorrupt, 0);

    const SweepRequestMsg req = smallRequest();
    const ServiceClient client(paths.socket);
    auto first = client.sweep(req);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_EQ(first->done.errors, 0u);

    // The second sweep finds the corrupt entry, rejects it by CRC,
    // quarantines the file, re-simulates, and overwrites — the reply
    // is byte-identical. Corruption costs work; it never answers.
    auto second = client.sweep(req);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_EQ(second->done.errors, 0u);
    EXPECT_EQ(ServiceClient::replyTable(req, *first),
              ServiceClient::replyTable(req, *second));
    EXPECT_EQ(daemon.counters().storeCorrupt, 1u);
    EXPECT_EQ(second->done.storeHits, 1u); // the uncorrupted cell

    // Third time everything is served from the (healed) store.
    auto third = client.sweep(req);
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(third->done.storeHits, 2u);
    EXPECT_EQ(ServiceClient::replyTable(req, *first),
              ServiceClient::replyTable(req, *third));
    daemon.stop();
}

TEST_F(ServiceTest, FullDiskSkipsCachingButStillServesResults)
{
    Paths paths("enospc");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // Every durable write hits a full disk for the whole first
    // sweep. A cache that cannot persist is a cache miss, never a
    // failed cell: the reply must complete with zero errors.
    armDriverFault(DriverFaultPoint::StoreEnospc,
                   kDriverFaultAnyIndex, /*times=*/100);
    const SweepRequestMsg req = smallRequest();
    const ServiceClient client(paths.socket);
    auto first = client.sweep(req);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_EQ(first->done.errors, 0u);
    EXPECT_EQ(daemon.counters().storeWrites, 0u)
        << "a failed put must not be counted as persisted";
    EXPECT_EQ(daemon.counters().cellsSimulated, 2u);

    // Disk recovered: the replay re-simulates (nothing was cached)
    // byte-identically and persists this time.
    disarmDriverFaults();
    auto second = client.sweep(req);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_EQ(second->done.storeHits, 0u);
    EXPECT_EQ(daemon.counters().storeWrites, 2u);
    EXPECT_EQ(ServiceClient::replyTable(req, *first),
              ServiceClient::replyTable(req, *second));
    daemon.stop();
}

// ---------------------------------------------- client deadlines

TEST_F(ServiceTest, ClientTimeoutBoundsASilentServer)
{
    // A listener that accepts connections and then never says a
    // word: without a client-side deadline, status() would block
    // forever on a daemon that wedged after accept.
    const std::string path = ::testing::TempDir() + "silent.sock";
    std::remove(path.c_str());
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(lfd, (const sockaddr *)&addr, sizeof(addr)), 0);
    ASSERT_EQ(::listen(lfd, 4), 0);

    const ServiceClient client(path, /*timeout_ms=*/300);
    const auto t0 = std::chrono::steady_clock::now();
    auto probe = client.status();
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_EQ(probe.status().code(), StatusCode::DeadlineExceeded)
        << probe.status().toString();
    EXPECT_LT(waited.count(), 5000) << "deadline did not bound the wait";

    auto swept = client.sweep(smallRequest());
    EXPECT_EQ(swept.status().code(), StatusCode::DeadlineExceeded)
        << swept.status().toString();
    ::close(lfd);
    std::remove(path.c_str());
}

// ------------------------------------------------------- admission

TEST_F(ServiceTest, FullQueueShedsWithResourceExhausted)
{
    Paths paths("shed");
    DaemonConfig config = testDaemonConfig(paths);
    config.maxQueue = 0; // admit nothing: every request sheds
    SweepDaemon daemon(config);
    ASSERT_TRUE(daemon.serve().ok());

    const ServiceClient client(paths.socket);
    const auto reply = client.sweep(smallRequest());
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::ResourceExhausted);
    const auto counters = daemon.counters();
    EXPECT_EQ(counters.shed, 1u);
    EXPECT_EQ(counters.admitted, 0u);
    daemon.stop();
}

TEST_F(ServiceTest, ConnectionFloodIsShedAtTheCap)
{
    Paths paths("conncap");
    DaemonConfig config = testDaemonConfig(paths);
    config.maxConnections = 2;
    SweepDaemon daemon(config);
    ASSERT_TRUE(daemon.serve().ok());

    // Two idle connections pin the cap (their handlers sit in the
    // request-read poll)...
    const int idle1 = rawConnect(paths.socket);
    const int idle2 = rawConnect(paths.socket);
    ASSERT_GE(idle1, 0);
    ASSERT_GE(idle2, 0);

    // ...so the third is refused up front with ResourceExhausted —
    // no handler thread is spent on it.
    const int fd = rawConnect(paths.socket);
    ASSERT_GE(fd, 0);
    FrameDecoder dec;
    Frame frame;
    bool have = false;
    uint8_t buf[4096];
    while (!have) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "daemon closed without an ErrorReply";
        ASSERT_TRUE(dec.feed(buf, (size_t)n).ok());
        ASSERT_TRUE(dec.next(&frame, &have).ok());
    }
    ::close(fd);
    ASSERT_EQ(frame.type, FrameType::ErrorReply);
    auto err = ErrorReplyMsg::decode(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->error().code(), StatusCode::ResourceExhausted);
    EXPECT_GE(daemon.counters().shed, 1u);

    // Once the flood clears, its handler slots are reaped and the
    // daemon serves again (retry: the reap happens on the *next*
    // accept, after the idle handlers notice EOF).
    ::close(idle1);
    ::close(idle2);
    const ServiceClient client(paths.socket);
    Result<SweepReply> reply = Status::unavailable("not tried");
    for (int attempt = 0; attempt < 200; ++attempt) {
        reply = client.sweep(smallRequest());
        if (reply.ok())
            break;
        std::this_thread::sleep_for(25ms);
    }
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->done.errors, 0u);
    daemon.stop();
}

TEST_F(ServiceTest, MalformedRequestGetsErrorReplyNotCrash)
{
    Paths paths("garbage");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // Raw socket, straight garbage: the daemon must answer with an
    // ErrorReply frame and keep serving.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, paths.socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, (const sockaddr *)&addr, sizeof(addr)),
              0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);

    FrameDecoder dec;
    Frame frame;
    bool have = false;
    uint8_t buf[4096];
    while (!have) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "daemon closed without an ErrorReply";
        ASSERT_TRUE(dec.feed(buf, (size_t)n).ok());
        ASSERT_TRUE(dec.next(&frame, &have).ok());
    }
    ::close(fd);
    EXPECT_EQ(frame.type, FrameType::ErrorReply);
    auto err = ErrorReplyMsg::decode(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->error().code(), StatusCode::Corruption);
    EXPECT_GE(daemon.counters().protoErrors, 1u);

    // Still serving.
    const ServiceClient client(paths.socket);
    EXPECT_TRUE(client.status().ok());
    daemon.stop();
}

TEST_F(ServiceTest, TornRequestIsARecoverableProtocolError)
{
    Paths paths("torn");
    DaemonConfig config = testDaemonConfig(paths);
    config.requestTimeoutMs = 500;
    SweepDaemon daemon(config);
    ASSERT_TRUE(daemon.serve().ok());

    armDriverFault(DriverFaultPoint::RequestTorn,
                   kDriverFaultAnyIndex, 1);
    const ServiceClient client(paths.socket);
    const auto reply = client.sweep(smallRequest());
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::Corruption);
    EXPECT_GE(daemon.counters().protoErrors, 1u);

    // The torn connection cost nothing but itself.
    const auto ok = client.sweep(smallRequest());
    EXPECT_TRUE(ok.ok()) << ok.status().toString();
    daemon.stop();
}

// -------------------------------------------- deadline propagation

TEST_F(ServiceTest, DeadlinePropagatesIntoTheJobWatchdog)
{
    Paths paths("deadline");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // Wedge the first job: the request deadline, propagated into the
    // per-job watchdog, must unwind it as DeadlineExceeded while the
    // daemon stays healthy. The second cell normally finishes well
    // inside the deadline; under a sanitizer's slowdown it may
    // legitimately blow it too, so only its *kind* of failure is
    // pinned down.
    armDriverFault(DriverFaultPoint::JobHang, 0);
    SweepRequestMsg req = smallRequest();
    req.deadlineMs = 1000;
    const ServiceClient client(paths.socket);
    const auto reply = client.sweep(req);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_GE(reply->done.errors, 1u);
    EXPECT_EQ(reply->rows[0].error().code(),
              StatusCode::DeadlineExceeded);
    if (reply->rows[1].errorCode != 0) {
        EXPECT_EQ(reply->rows[1].error().code(),
                  StatusCode::DeadlineExceeded);
    }
    EXPECT_GE(daemon.counters().deadlineExceeded, 1u);

    // The machine-readable error report names the cell the same way
    // finishSweep() would.
    EXPECT_NE(reply->done.errorsJson.find("\"row\":\"li/cfg0\""),
              std::string::npos)
        << reply->done.errorsJson;
    EXPECT_NE(reply->done.errorsJson.find("deadline-exceeded"),
              std::string::npos);
    daemon.stop();
}

// ------------------------------------------------- circuit breaker

TEST_F(ServiceTest, BreakerOpensAfterRepeatedFailuresAndProbesShut)
{
    Paths paths("breaker");
    DaemonConfig config = testDaemonConfig(paths);
    config.breaker.openAfter = 2;
    config.breaker.probeEvery = 2;
    SweepDaemon daemon(config);
    ASSERT_TRUE(daemon.serve().ok());

    SweepRequestMsg req = smallRequest();
    req.configs.resize(1); // one cell: one fingerprint to poison
    const ServiceClient client(paths.socket);

    // Two requests whose only cell crashes: breaker opens.
    armDriverFault(DriverFaultPoint::JobCrash, 0, 2);
    for (int i = 0; i < 2; ++i) {
        const auto reply = client.sweep(req);
        ASSERT_TRUE(reply.ok()) << reply.status().toString();
        EXPECT_EQ(reply->rows[0].error().code(), StatusCode::Internal)
            << "request " << i;
    }

    // Open: the next attempt is refused without running anything
    // (the fault budget is spent — a run would have succeeded).
    auto refused = client.sweep(req);
    ASSERT_TRUE(refused.ok());
    EXPECT_EQ(refused->rows[0].error().code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(daemon.counters().breakerOpen, 1u);

    // Every second blocked attempt is a half-open probe; the now-
    // healthy cell closes the breaker and lands in the store.
    auto probe = client.sweep(req);
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(probe->rows[0].errorCode, 0);
    EXPECT_EQ(probe->done.errors, 0u);

    auto after = client.sweep(req);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->rows[0].errorCode, 0);
    EXPECT_EQ(after->done.storeHits, 1u);
    daemon.stop();
}

// --------------------------------------- disconnects and draining

TEST_F(ServiceTest, ClientDisconnectMidStreamDoesNotKillTheDaemon)
{
    Paths paths("drop");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // The daemon "loses" the client before the first row.
    armDriverFault(DriverFaultPoint::ConnDrop, 0);
    const ServiceClient client(paths.socket);
    const auto dropped = client.sweep(smallRequest());
    EXPECT_FALSE(dropped.ok());
    EXPECT_EQ(daemon.counters().connDropped, 1u);

    // SIGPIPE was not our end: the daemon keeps serving, and the
    // retried request is answered from the store (the dropped
    // reply's cells were persisted before streaming).
    const auto retried = client.sweep(smallRequest());
    ASSERT_TRUE(retried.ok()) << retried.status().toString();
    EXPECT_EQ(retried->done.storeHits, 2u);
    daemon.stop();
}

TEST_F(ServiceTest, DrainFinishesAdmittedWorkBeforeExit)
{
    Paths paths("drain");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    // Launch a sweep, wait until it is *admitted*, then drain: the
    // admitted request must complete its reply stream, not be
    // abandoned.
    const ServiceClient client(paths.socket);
    std::atomic<bool> ok{false};
    std::thread sweeper([&] {
        const auto reply = client.sweep(smallRequest());
        ok.store(reply.ok() && reply->done.errors == 0);
    });
    for (int i = 0; i < 400 && daemon.counters().admitted == 0; ++i)
        std::this_thread::sleep_for(5ms);
    ASSERT_EQ(daemon.counters().admitted, 1u);
    daemon.stop();
    sweeper.join();
    EXPECT_TRUE(ok.load());
}

// ------------------------------------------- subprocess e2e drills

TEST_F(ServiceTest, KillNineRestartReplayIsByteIdentical)
{
    // The acceptance drill: SIGKILL the daemon mid-sweep (via the
    // daemon_kill fault, right after the 2nd durable store write),
    // restart it over the same store, replay the request, and demand
    // (a) a byte-identical merged table and (b) store hits from the
    // cells the killed daemon completed.
    if (!serviceBinariesBuilt())
        GTEST_SKIP() << "service binaries not built in this tree";

    const SweepRequestMsg req = [] {
        SweepRequestMsg r = smallRequest();
        r.workloads = {"li", "com"};
        return r;
    }();

    // Reference run against a pristine daemon/store.
    Paths ref_paths("e2e_ref");
    const int ref_pid = spawnDaemon("", ref_paths);
    ASSERT_GT(ref_pid, 0);
    auto reference = ServiceClient(ref_paths.socket).sweep(req);
    ASSERT_TRUE(reference.ok()) << reference.status().toString();
    stopDaemon(ref_pid);
    const std::string want =
        ServiceClient::replyTable(req, *reference);

    // Murdered run: the daemon dies mid-sweep with 2 of 4 cells
    // durably in the store.
    Paths paths("e2e_kill");
    const int killed_pid =
        spawnDaemon("RARPRED_FAULT=daemon_kill:1", paths);
    ASSERT_GT(killed_pid, 0);
    const auto interrupted = ServiceClient(paths.socket).sweep(req);
    EXPECT_FALSE(interrupted.ok()); // connection died mid-request
    for (int i = 0; i < 200 && ::kill(killed_pid, 0) == 0; ++i)
        std::this_thread::sleep_for(25ms);

    // Restart over the same store and replay.
    const int restarted_pid = spawnDaemon("", paths);
    ASSERT_GT(restarted_pid, 0);
    auto replayed = ServiceClient(paths.socket).sweep(req);
    ASSERT_TRUE(replayed.ok()) << replayed.status().toString();
    EXPECT_EQ(ServiceClient::replyTable(req, *replayed), want);
    // Zero loss: the killed daemon's completed cells came back from
    // the store.
    EXPECT_EQ(replayed->done.storeHits, 2u);
    EXPECT_EQ(replayed->done.errors, 0u);
    stopDaemon(restarted_pid);
}

// ------------------------------------- factory workloads over the wire

TEST_F(ServiceTest, FactoryWorkloadNamesResolveInSweepRequests)
{
    // Parameterized presets and dynamic fuzz workloads go through
    // the same lookupWorkload() the CLI drivers use, so a sweep
    // request can name them directly.
    Paths paths("factory");
    SweepDaemon daemon(testDaemonConfig(paths));
    ASSERT_TRUE(daemon.serve().ok());

    SweepRequestMsg req = smallRequest();
    req.workloads = {"li", "factory.rar_heavy", "factory.fuzz:42"};
    const ServiceClient client(paths.socket);
    auto reply = client.sweep(req);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    ASSERT_EQ(reply->rows.size(), 6u);
    EXPECT_EQ(reply->done.errors, 0u);
    for (const RowMsg &row : reply->rows) {
        EXPECT_EQ(row.errorCode, 0);
        EXPECT_GT(row.stats.instructions, 0u);
    }

    // A bogus factory name fails the whole request up front with
    // NotFound — no partial grid, no simulation work sunk.
    req.workloads = {"factory.no_such_preset"};
    EXPECT_EQ(client.sweep(req).status().code(),
              StatusCode::NotFound);
    daemon.stop();
}

// --------------------------------------- process-isolated execution

TEST_F(ServiceTest, IsolateJobsIsByteIdenticalAndLeavesNoZombies)
{
    if (driver::WorkerPool::resolveWorkerBinary("").empty())
        GTEST_SKIP() << "rarpred-worker not built in this tree";

    const SweepRequestMsg req = [] {
        SweepRequestMsg r = smallRequest();
        r.workloads = {"li", "factory.fuzz:42"};
        return r;
    }();

    // In-process reference.
    Paths ref_paths("iso_ref");
    SweepDaemon ref(testDaemonConfig(ref_paths));
    ASSERT_TRUE(ref.serve().ok());
    auto reference = ServiceClient(ref_paths.socket).sweep(req);
    ASSERT_TRUE(reference.ok()) << reference.status().toString();
    ref.stop();

    // Same request, every cell computed in a worker process.
    Paths paths("iso");
    DaemonConfig config = testDaemonConfig(paths);
    config.isolateJobs = true;
    SweepDaemon daemon(config);
    ASSERT_TRUE(daemon.serve().ok());
    auto isolated = ServiceClient(paths.socket).sweep(req);
    ASSERT_TRUE(isolated.ok()) << isolated.status().toString();
    EXPECT_EQ(ServiceClient::replyTable(req, *isolated),
              ServiceClient::replyTable(req, *reference));

    ASSERT_NE(daemon.workerPool(), nullptr);
    daemon.stop();
    const driver::WorkerPoolStats stats =
        daemon.workerPool()->stats();
    EXPECT_GE(stats.jobsCompleted, 4u)
        << "cells did not actually run out of process";
    EXPECT_GE(stats.spawned, 1u);
    EXPECT_EQ(stats.spawned, stats.reaped)
        << "drain left worker zombies";
    // Wildcard wait finds nothing at all: the drained daemon's pool
    // reaped every child it ever forked.
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

TEST_F(ServiceTest, IsolatedDaemonSurvivesWorkerCrashEndToEnd)
{
    // Acceptance drill against the real rarpredd: with
    // --isolate-jobs, SIGKILLing a worker mid-job (worker_crash)
    // must cost a retry, not the daemon — the reply stays
    // byte-identical to an unfaulted, un-isolated run.
    if (!serviceBinariesBuilt())
        GTEST_SKIP() << "service binaries not built in this tree";

    const SweepRequestMsg req = smallRequest();

    Paths ref_paths("isoe2e_ref");
    const int ref_pid = spawnDaemon("", ref_paths);
    ASSERT_GT(ref_pid, 0);
    auto reference = ServiceClient(ref_paths.socket).sweep(req);
    ASSERT_TRUE(reference.ok()) << reference.status().toString();
    stopDaemon(ref_pid);

    Paths paths("isoe2e");
    const int pid = spawnDaemon("RARPRED_FAULT=worker_crash:1", paths,
                                "--isolate-jobs");
    ASSERT_GT(pid, 0);
    auto isolated = ServiceClient(paths.socket).sweep(req);
    ASSERT_TRUE(isolated.ok()) << isolated.status().toString();
    EXPECT_EQ(isolated->done.errors, 0u);
    EXPECT_EQ(ServiceClient::replyTable(req, *isolated),
              ServiceClient::replyTable(req, *reference));
    stopDaemon(pid);
}

TEST_F(ServiceTest, CliEndToEnd)
{
    if (!serviceBinariesBuilt())
        GTEST_SKIP() << "service binaries not built in this tree";
    const std::string cli =
        std::string(RARPRED_SERVICE_DIR) + "/rarpred-cli";
    if (!std::ifstream(cli).good())
        GTEST_SKIP() << "rarpred-cli not built in this tree";

    Paths paths("cli");
    const int pid = spawnDaemon("", paths);
    ASSERT_GT(pid, 0);

    const std::string dir = ::testing::TempDir();
    const std::string out1 = dir + "rarpred_cli1.out";
    const std::string out2 = dir + "rarpred_cli2.out";
    const std::string base = cli + " --socket=" + paths.socket;
    EXPECT_EQ(std::system((base + " --status >/dev/null").c_str()),
              0);
    // Factory names ride the same positional-workload path as the
    // 18 paper workloads, including a dynamic fuzz workload.
    const std::string sweep =
        " --max-insts=20000 li factory.fuzz:7 >";
    EXPECT_EQ(
        std::system((base + sweep + out1 + " 2>/dev/null").c_str()),
        0);
    EXPECT_EQ(
        std::system((base + sweep + out2 + " 2>/dev/null").c_str()),
        0);
    const std::string cold = readWholeFile(out1);
    ASSERT_FALSE(cold.empty());
    EXPECT_EQ(cold, readWholeFile(out2)); // cold vs warm: identical
    EXPECT_NE(cold.find("li/cfg0.instructions 20000"),
              std::string::npos)
        << cold;
    EXPECT_NE(cold.find("factory.fuzz:7/cfg0.instructions"),
              std::string::npos)
        << cold;
    stopDaemon(pid);
    std::remove(out1.c_str());
    std::remove(out2.c_str());
}

} // namespace
} // namespace rarpred::service
