/**
 * @file
 * Unit tests for the workload kernel library: every emitter must
 * produce a program that assembles, runs to completion, touches the
 * data it was given, and respects the register convention.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/inst_mix.hh"
#include "common/rng.hh"
#include "vm/micro_vm.hh"
#include "workload/kernels.hh"

namespace rarpred {
namespace {

using namespace kernels;

/** Run a single-kernel program for a few iterations. */
InstMixCounter
runKernel(ProgramBuilder &b, uint64_t iters = 5)
{
    // emitMain must come first; callers emit their kernel after.
    Program p = b.build();
    MicroVM vm(p);
    InstMixCounter mix;
    vm.run(mix, 10'000'000ull);
    EXPECT_TRUE(vm.halted()) << "kernel did not halt";
    (void)iters;
    return mix;
}

TEST(Kernels, ListWalkRunsAndAccumulates)
{
    ProgramBuilder b("k");
    Rng rng(1);
    uint64_t head = allocList(b, rng, 16, true);
    uint64_t sum = allocGlobal(b);
    uint64_t count = allocGlobal(b);
    emitMain(b, {"walk"}, 5);
    emitListWalk(b, "walk", {head, sum, count, 17});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(10'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_GT(vm.readWord(sum), 0u); // accumulated node data
}

TEST(Kernels, ListWalkTwoSiteVariant)
{
    ProgramBuilder b("k");
    Rng rng(2);
    uint64_t head = allocList(b, rng, 16, false);
    uint64_t sum = allocGlobal(b);
    uint64_t count = allocGlobal(b);
    emitMain(b, {"walk"}, 5);
    emitListWalk(b, "walk", {head, sum, count, 17, true});
    auto mix = runKernel(b);
    EXPECT_GT(mix.loads(), 0u);
}

TEST(Kernels, ListWalkUnrolledReadsExactDepth)
{
    ProgramBuilder b("k");
    Rng rng(3);
    uint64_t head = allocList(b, rng, 12, true);
    uint64_t sum = allocGlobal(b);
    emitMain(b, {"walk"}, 1);
    emitListWalkUnrolled(b, "walk", {head, 12, sum});
    Program p = b.build();
    MicroVM vm(p);
    InstMixCounter mix;
    vm.run(mix, 1'000'000ull);
    ASSERT_TRUE(vm.halted());
    // 12 positions x 3 loads + head + sum = 38 loads in one call.
    EXPECT_EQ(mix.loads(), 12u * 3 + 2);
    EXPECT_GT(vm.readWord(sum), 0u);
}

TEST(Kernels, HashProbeFindsKeys)
{
    ProgramBuilder b("k");
    Rng rng(4);
    uint64_t table = allocHashTable(b, rng, 16, 32);
    auto keys = mixedStream(rng, 64, 32, 4, 0.8);
    uint64_t stream = allocStream(b, keys.size(), keys);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"probe"}, 3);
    emitHashProbe(b, "probe",
                  {table, 16, stream, keys.size(), cursor, 10, true});
    auto mix = runKernel(b);
    EXPECT_GT(mix.loads(), 30u); // stream + bucket + chain per probe
    EXPECT_GT(mix.stores(), 0u); // value updates on hits
}

TEST(Kernels, HashProbeCursorAdvancesAndWraps)
{
    ProgramBuilder b("k");
    Rng rng(5);
    uint64_t table = allocHashTable(b, rng, 16, 16);
    auto keys = mixedStream(rng, 8, 16, 2, 0.9);
    uint64_t stream = allocStream(b, keys.size(), keys);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"probe"}, 1);
    emitHashProbe(b, "probe",
                  {table, 16, stream, keys.size(), cursor, 10, false});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    // 10 probes over an 8-entry stream: cursor wrapped to 2.
    EXPECT_EQ(vm.readWord(cursor), 2u);
}

TEST(Kernels, CallChainBalancesStack)
{
    ProgramBuilder b("k");
    Rng rng(6);
    uint64_t arr = allocIntArray(b, rng, 32, 100);
    uint64_t acc = allocGlobal(b);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"calls"}, 4);
    emitCallChain(b, "calls", {arr, 32, acc, 8, cursor});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readReg(reg::kSp), vm.memBytes()); // stack balanced
    EXPECT_GT(vm.readWord(acc), 0u);
}

TEST(Kernels, TreeSearchCountsHits)
{
    ProgramBuilder b("k");
    Rng rng(7);
    uint64_t root = allocTree(b, rng, 31);
    std::vector<uint64_t> queries(16);
    for (size_t i = 0; i < queries.size(); ++i)
        queries[i] = 1 + (i % 31);
    uint64_t stream = allocStream(b, queries.size(), queries);
    uint64_t cursor = allocGlobal(b);
    uint64_t found = allocGlobal(b);
    emitMain(b, {"search"}, 2);
    emitTreeSearch(b, "search",
                   {root, stream, queries.size(), cursor, found, 8});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    // Every query key exists in the 31-node tree.
    EXPECT_GT(vm.readWord(found), 0u);
}

TEST(Kernels, IntSweepWriteBackMutatesArray)
{
    ProgramBuilder b("k");
    Rng rng(8);
    uint64_t arr = allocIntArray(b, rng, 16, 100);
    uint64_t sum = allocGlobal(b);
    uint64_t cnt = allocGlobal(b);
    emitMain(b, {"sweep"}, 1);
    emitIntSweep(b, "sweep", {arr, 16, sum, cnt, 2, 50, true});
    Program p = b.build();
    MicroVM vm(p);
    MicroVM reference(p);
    uint64_t before = reference.readWord(arr);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    // extraAlu=2 transforms each element before writing back.
    EXPECT_NE(vm.readWord(arr), before);
}

TEST(Kernels, DispatchUpdatesCycleCounter)
{
    ProgramBuilder b("k");
    Rng rng(9);
    auto ops = mixedStream(rng, 32, 16, 4, 0.9);
    uint64_t stream = allocStream(b, ops.size(), ops);
    uint64_t table = allocIntArray(b, rng, 16, 8);
    uint64_t regs = allocIntArray(b, rng, 32, 100);
    uint64_t cursor = allocGlobal(b);
    uint64_t cycles = allocGlobal(b);
    emitMain(b, {"disp"}, 2);
    emitDispatch(b, "disp",
                 {stream, ops.size(), table, 16, regs, cursor, cycles,
                  10});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_GT(vm.readWord(cycles), 0u);
}

TEST(Kernels, RecordUpdateWritesAllFourFields)
{
    ProgramBuilder b("k");
    Rng rng(10);
    uint64_t records = allocIntArray(b, rng, 8 * 4, 10);
    std::vector<uint64_t> idx = {3, 3, 3, 3};
    uint64_t stream = allocStream(b, idx.size(), idx);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"upd"}, 1);
    emitRecordUpdate(b, "upd", {records, 8, stream, idx.size(), cursor, 2});
    Program p = b.build();
    MicroVM vm(p);
    uint64_t rec3 = records + 3 * 32;
    MicroVM fresh(p);
    uint64_t f0 = fresh.readWord(rec3), f1 = fresh.readWord(rec3 + 8);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_NE(vm.readWord(rec3), f0);
    EXPECT_NE(vm.readWord(rec3 + 8), f1);
    EXPECT_NE(vm.readWord(rec3 + 16), 0u); // audit copy written
}

TEST(Kernels, FillWritesRange)
{
    ProgramBuilder b("k");
    uint64_t dst = b.allocWords(16);
    uint64_t seed = allocGlobal(b, 5);
    emitMain(b, {"fill"}, 1);
    emitFill(b, "fill", {dst, 16, seed});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(dst), 5u);
    EXPECT_EQ(vm.readWord(dst + 15 * 8), 20u);
    EXPECT_EQ(vm.readWord(seed), 21u); // rolling seed persisted
}

TEST(Kernels, CopyTransformMovesData)
{
    ProgramBuilder b("k");
    Rng rng(11);
    uint64_t src = allocIntArray(b, rng, 8, 100);
    uint64_t dst = b.allocWords(8);
    emitMain(b, {"copy"}, 1);
    emitCopyTransform(b, "copy", {src, dst, 8});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    uint64_t s0 = vm.readWord(src);
    EXPECT_EQ(vm.readWord(dst), (s0 << 1) ^ s0);
}

TEST(Kernels, StencilComputesWeightedSum)
{
    ProgramBuilder b("k");
    Rng rng(12);
    uint64_t in = allocFpArray(b, rng, 16);
    uint64_t out = b.allocWords(16);
    uint64_t w = b.allocWords(3);
    for (int i = 0; i < 3; ++i)
        b.initWordF(w + i * 8, 0.25);
    emitMain(b, {"st"}, 1);
    emitStencil(b, "st", {in, out, 16, w, true, 0, 3});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    // out[1] = 0.25*(in[0]+in[1]+in[2]) > 0 for positive inputs.
    EXPECT_NE(vm.readWord(out + 8), 0u);
    EXPECT_EQ(vm.readWord(out), 0u); // boundary untouched
}

TEST(Kernels, WideStencilRuns)
{
    ProgramBuilder b("k");
    Rng rng(13);
    uint64_t in = allocFpArray(b, rng, 32);
    uint64_t out = b.allocWords(32);
    uint64_t w = b.allocWords(9);
    for (int i = 0; i < 9; ++i)
        b.initWordF(w + i * 8, 0.1);
    emitMain(b, {"st"}, 1);
    emitStencil(b, "st", {in, out, 32, w, true, 0, 9});
    runKernel(b);
}

TEST(Kernels, FpGlobalsMutationRotates)
{
    ProgramBuilder b("k");
    Rng rng(14);
    uint64_t globals = allocFpArray(b, rng, 16);
    uint64_t out = b.allocWords(8);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"g"}, 1);
    emitFpGlobals(b, "g", {globals, 16, out, 20, 3, cursor});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(cursor), 20u); // one bump per repeat
}

TEST(Kernels, FpReduceWritesResult)
{
    ProgramBuilder b("k");
    Rng rng(15);
    uint64_t a = allocFpArray(b, rng, 16);
    uint64_t v = allocFpArray(b, rng, 16);
    uint64_t result = allocGlobal(b);
    emitMain(b, {"dot"}, 1);
    emitFpReduce(b, "dot", {a, v, 16, result});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_NE(vm.readWord(result), 0u);
}

TEST(Kernels, MatMulAccumulatesIntoC)
{
    ProgramBuilder b("k");
    Rng rng(16);
    uint64_t ma = allocFpArray(b, rng, 16);
    uint64_t mb = allocFpArray(b, rng, 16);
    uint64_t mc = allocFpArray(b, rng, 16);
    emitMain(b, {"mm"}, 1);
    emitMatMul(b, "mm", {ma, mb, mc, 4});
    Program p = b.build();
    MicroVM vm(p);
    MicroVM fresh(p);
    uint64_t before = fresh.readWord(mc);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_NE(vm.readWord(mc), before);
}

TEST(Kernels, ParticleAdvancesCursor)
{
    ProgramBuilder b("k");
    Rng rng(17);
    uint64_t parts = allocFpArray(b, rng, 8 * 4);
    uint64_t grid = allocFpArray(b, rng, 16);
    uint64_t dt = b.allocWords(1);
    b.initWordF(dt, 0.01);
    uint64_t cursor = allocGlobal(b);
    emitMain(b, {"push"}, 1);
    emitParticle(b, "push", {parts, 8, grid, 16, dt, 5, cursor});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(cursor), 5u);
}

TEST(Kernels, GlobalsRmwIncrements)
{
    ProgramBuilder b("k");
    Rng rng(18);
    uint64_t globals = allocIntArray(b, rng, 4, 1);
    emitMain(b, {"rmw"}, 1);
    emitGlobalsRmw(b, "rmw", {globals, 4, 10, 0});
    Program p = b.build();
    MicroVM vm(p);
    MicroVM fresh(p);
    uint64_t before = fresh.readWord(globals);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(globals), before + 10u); // +1 per round
}

TEST(Kernels, GlobalsReadLeavesGlobalsUntouched)
{
    ProgramBuilder b("k");
    Rng rng(19);
    uint64_t globals = allocIntArray(b, rng, 8, 100);
    uint64_t sink = allocGlobal(b);
    emitMain(b, {"cfg"}, 2);
    emitGlobalsRead(b, "cfg", {globals, 8, 4, sink});
    Program p = b.build();
    MicroVM vm(p);
    MicroVM fresh(p);
    uint64_t before = fresh.readWord(globals + 3 * 8);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(globals + 3 * 8), before);
    EXPECT_GT(vm.readWord(sink), 0u);
}

/** Follow a list's next pointers in a fresh VM's initial memory. */
std::vector<uint64_t>
chaseList(const Program &p, uint64_t head_cell, size_t limit)
{
    MicroVM vm(p);
    std::vector<uint64_t> nodes;
    uint64_t node = vm.readWord(head_cell);
    while (node != 0 && nodes.size() < limit) {
        nodes.push_back(node);
        node = vm.readWord(node + 24); // next field
    }
    return nodes;
}

TEST(KernelEdgeCases, AllocListSequentialLinksInAllocationOrder)
{
    ProgramBuilder b("k");
    Rng rng(20);
    uint64_t head = allocList(b, rng, 8, /*shuffled=*/false);
    emitMain(b, {"walk"}, 1);
    uint64_t sum = allocGlobal(b);
    uint64_t count = allocGlobal(b);
    emitListWalk(b, "walk", {head, sum, count, 17});
    Program p = b.build();

    const auto nodes = chaseList(p, head, 16);
    ASSERT_EQ(nodes.size(), 8u);
    // Sequential linking: each node is exactly 32 bytes (one 4-word
    // node) past its predecessor — perfect spatial locality.
    for (size_t i = 1; i < nodes.size(); ++i)
        EXPECT_EQ(nodes[i], nodes[i - 1] + 32) << "node " << i;
}

TEST(KernelEdgeCases, AllocListShuffledPermutesTheSameNodes)
{
    ProgramBuilder bs("k");
    Rng rng_s(21);
    uint64_t head_s = allocList(bs, rng_s, 32, /*shuffled=*/true);
    emitMain(bs, {"walk"}, 1);
    uint64_t sum = allocGlobal(bs);
    uint64_t count = allocGlobal(bs);
    emitListWalk(bs, "walk", {head_s, sum, count, 17});
    Program p = bs.build();

    const auto nodes = chaseList(p, head_s, 64);
    ASSERT_EQ(nodes.size(), 32u) << "shuffle lost or duplicated nodes";

    // Every node visited exactly once...
    std::set<uint64_t> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
    // ...covering one contiguous 32-node slab...
    EXPECT_EQ(*unique.rbegin() - *unique.begin(), 31u * 32);
    // ...in a genuinely non-sequential order.
    bool any_backward = false;
    for (size_t i = 1; i < nodes.size(); ++i)
        any_backward |= nodes[i] < nodes[i - 1];
    EXPECT_TRUE(any_backward);

    // And the walk kernel still terminates on the shuffled layout.
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_GT(vm.readWord(sum), 0u);
}

TEST(KernelEdgeCases, SingleNodeListWalks)
{
    ProgramBuilder b("k");
    Rng rng(22);
    uint64_t head = allocList(b, rng, 1, /*shuffled=*/true);
    uint64_t sum = allocGlobal(b);
    uint64_t count = allocGlobal(b);
    emitMain(b, {"walk"}, 3);
    emitListWalk(b, "walk", {head, sum, count, 17, true});
    Program p = b.build();

    const auto nodes = chaseList(p, head, 4);
    ASSERT_EQ(nodes.size(), 1u); // next must terminate immediately

    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
}

TEST(KernelEdgeCases, ManyKernelInstancesKeepLabelsDistinct)
{
    // Twenty instances of the same kernel shape in one program: every
    // internal label is prefixed with the kernel name, so this must
    // assemble without a duplicate-label fatal and each instance must
    // bump its own counter.
    constexpr int kInstances = 20;
    ProgramBuilder b("k");
    std::vector<uint64_t> counters;
    std::vector<std::string> names;
    for (int i = 0; i < kInstances; ++i) {
        counters.push_back(allocGlobal(b));
        names.push_back("rmw" + std::to_string(i));
    }
    emitMain(b, names, 2);
    for (int i = 0; i < kInstances; ++i)
        emitGlobalsRmw(b, names[i], {counters[i], 1, 1, 0});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(10'000'000ull);
    ASSERT_TRUE(vm.halted());
    for (int i = 0; i < kInstances; ++i)
        EXPECT_EQ(vm.readWord(counters[i]), 2u) << "instance " << i;
}

TEST(Kernels, PeriodicMainSkipsByPeriod)
{
    ProgramBuilder b("k");
    uint64_t c1 = allocGlobal(b);
    uint64_t c2 = allocGlobal(b);
    emitMainPeriodic(b, {{"every", 1}, {"third", 3}}, 9);
    emitGlobalsRmw(b, "every", {c1, 1, 1, 0});
    emitGlobalsRmw(b, "third", {c2, 1, 1, 0});
    Program p = b.build();
    MicroVM vm(p);
    vm.run(1'000'000ull);
    ASSERT_TRUE(vm.halted());
    EXPECT_EQ(vm.readWord(c1), 9u);
    EXPECT_EQ(vm.readWord(c2), 3u); // iterations 3, 6, 9
}

} // namespace
} // namespace rarpred
