/**
 * @file
 * Unit tests for the DPNT: synonym allocation, the two merge policies
 * of Section 5.1, and the two confidence mechanisms of Section 5.3.
 */

#include <gtest/gtest.h>

#include "core/dpnt.hh"

namespace rarpred {
namespace {

Dependence
rar(uint64_t src, uint64_t sink)
{
    return {DepType::Rar, src, sink};
}

Dependence
raw(uint64_t src, uint64_t sink)
{
    return {DepType::Raw, src, sink};
}

TEST(Dpnt, TrainCreatesSharedSynonym)
{
    Dpnt dpnt(DpntConfig{});
    dpnt.train(rar(0x100, 0x200));
    DpntEntry *src = dpnt.lookup(0x100);
    DpntEntry *sink = dpnt.lookup(0x200);
    ASSERT_TRUE(src && sink);
    EXPECT_NE(src->synonym, kNoSynonym);
    EXPECT_EQ(src->synonym, sink->synonym);
    EXPECT_TRUE(src->producer.valid);
    EXPECT_FALSE(src->producerIsStore);
    EXPECT_TRUE(sink->consumer.valid);
    EXPECT_FALSE(sink->producer.valid);
}

TEST(Dpnt, RawTrainingMarksStoreProducer)
{
    Dpnt dpnt(DpntConfig{});
    dpnt.train(raw(0x100, 0x200));
    EXPECT_TRUE(dpnt.lookup(0x100)->producerIsStore);
}

TEST(Dpnt, ExistingSynonymPropagatesToNewPartner)
{
    Dpnt dpnt(DpntConfig{});
    dpnt.train(rar(0x100, 0x200));
    Synonym s = dpnt.lookup(0x100)->synonym;
    dpnt.train(rar(0x100, 0x300)); // new sink joins the group
    EXPECT_EQ(dpnt.lookup(0x300)->synonym, s);
    dpnt.train(rar(0x400, 0x300)); // new source joins via the sink
    EXPECT_EQ(dpnt.lookup(0x400)->synonym, s);
    EXPECT_EQ(dpnt.synonymsAllocated(), 1u);
}

TEST(Dpnt, SelfDependenceSetsBothRoles)
{
    Dpnt dpnt(DpntConfig{});
    dpnt.train(rar(0x100, 0x100));
    DpntEntry *e = dpnt.lookup(0x100);
    ASSERT_TRUE(e);
    EXPECT_TRUE(e->producer.valid);
    EXPECT_TRUE(e->consumer.valid);
    EXPECT_NE(e->synonym, kNoSynonym);
}

TEST(Dpnt, FullMergeRewritesAllInstances)
{
    // The paper's ST1 A, LD1 A, ST2 B, LD2 B, ST1 C, LD2 C scenario.
    DpntConfig config;
    config.merge = MergePolicy::FullMerge;
    Dpnt dpnt(config);
    dpnt.train(raw(0x10, 0x20)); // synonym X
    dpnt.train(raw(0x30, 0x40)); // synonym Y
    Synonym x = dpnt.lookup(0x10)->synonym;
    Synonym y = dpnt.lookup(0x30)->synonym;
    EXPECT_NE(x, y);
    dpnt.train(raw(0x10, 0x40)); // cross dependence: merge
    EXPECT_EQ(dpnt.mergeCount(), 1u);
    Synonym merged = std::min(x, y);
    // Full merge: every member of both groups now shares one synonym.
    EXPECT_EQ(dpnt.lookup(0x10)->synonym, merged);
    EXPECT_EQ(dpnt.lookup(0x20)->synonym, merged);
    EXPECT_EQ(dpnt.lookup(0x30)->synonym, merged);
    EXPECT_EQ(dpnt.lookup(0x40)->synonym, merged);
}

TEST(Dpnt, IncrementalMergeOnlyChangesOneInstruction)
{
    DpntConfig config;
    config.merge = MergePolicy::Incremental;
    Dpnt dpnt(config);
    dpnt.train(raw(0x10, 0x20)); // synonym X (smaller)
    dpnt.train(raw(0x30, 0x40)); // synonym Y (larger)
    Synonym x = dpnt.lookup(0x10)->synonym;
    Synonym y = dpnt.lookup(0x30)->synonym;
    ASSERT_LT(x, y);
    dpnt.train(raw(0x10, 0x40));
    // Only LD2 (0x40), the larger-synonym side, was rewritten.
    EXPECT_EQ(dpnt.lookup(0x40)->synonym, x);
    EXPECT_EQ(dpnt.lookup(0x20)->synonym, x);
    EXPECT_EQ(dpnt.lookup(0x30)->synonym, y); // untouched
}

TEST(Dpnt, IncrementalMergeConvergesEventually)
{
    // Because the smaller synonym always wins, repeated detections
    // pull the whole group to one name.
    DpntConfig config;
    config.merge = MergePolicy::Incremental;
    Dpnt dpnt(config);
    dpnt.train(raw(0x10, 0x20));
    dpnt.train(raw(0x30, 0x40));
    Synonym x = dpnt.lookup(0x10)->synonym;
    for (int round = 0; round < 3; ++round) {
        dpnt.train(raw(0x10, 0x40));
        dpnt.train(raw(0x30, 0x40));
        dpnt.train(raw(0x30, 0x20));
    }
    EXPECT_EQ(dpnt.lookup(0x10)->synonym, x);
    EXPECT_EQ(dpnt.lookup(0x20)->synonym, x);
    EXPECT_EQ(dpnt.lookup(0x30)->synonym, x);
    EXPECT_EQ(dpnt.lookup(0x40)->synonym, x);
}

TEST(Dpnt, LookupMissReturnsNull)
{
    Dpnt dpnt(DpntConfig{});
    EXPECT_EQ(dpnt.lookup(0x1234), nullptr);
}

TEST(Dpnt, FiniteGeometryEvictsSafely)
{
    DpntConfig config;
    config.geometry = {8, 2};
    Dpnt dpnt(config);
    for (uint64_t i = 0; i < 100; ++i)
        dpnt.train(rar(0x1000 + i * 64, 0x2000 + i * 64));
    // No crash, and recent entries are present.
    EXPECT_NE(dpnt.lookup(0x1000 + 99 * 64), nullptr);
}

TEST(Dpnt, ClearResetsState)
{
    Dpnt dpnt(DpntConfig{});
    dpnt.train(rar(0x100, 0x200));
    dpnt.clear();
    EXPECT_EQ(dpnt.lookup(0x100), nullptr);
    EXPECT_EQ(dpnt.synonymsAllocated(), 0u);
}

// ---------------------------------------------------- role predictors

TEST(RolePredictor, PredictsImmediatelyAfterAllocation)
{
    RolePredictor p;
    EXPECT_FALSE(p.use(ConfidenceKind::TwoBitAdaptive));
    p.allocate();
    EXPECT_TRUE(p.use(ConfidenceKind::TwoBitAdaptive));
    EXPECT_TRUE(p.use(ConfidenceKind::OneBitNonAdaptive));
}

TEST(RolePredictor, AdaptiveRequiresTwoCorrectAfterMiss)
{
    // Section 5.3: "once a misprediction is encountered it requires
    // two correct predictions before allowing a predicted value to be
    // used again."
    RolePredictor p;
    p.allocate();
    p.onIncorrect();
    EXPECT_FALSE(p.use(ConfidenceKind::TwoBitAdaptive));
    p.onCorrect();
    EXPECT_FALSE(p.use(ConfidenceKind::TwoBitAdaptive));
    p.onCorrect();
    EXPECT_TRUE(p.use(ConfidenceKind::TwoBitAdaptive));
}

TEST(RolePredictor, OneBitIgnoresMispredictions)
{
    RolePredictor p;
    p.allocate();
    p.onIncorrect();
    p.onIncorrect();
    EXPECT_TRUE(p.use(ConfidenceKind::OneBitNonAdaptive));
}

TEST(RolePredictor, ReallocationDoesNotResetConfidence)
{
    // A repeated detection must not erase the penalty state.
    RolePredictor p;
    p.allocate();
    p.onIncorrect();
    p.allocate(); // dependence detected again
    EXPECT_FALSE(p.use(ConfidenceKind::TwoBitAdaptive));
}

} // namespace
} // namespace rarpred
