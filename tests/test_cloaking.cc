/**
 * @file
 * End-to-end tests of the cloaking engine on hand-built dynamic
 * instruction streams: the Figure 4 RAR scenario, RAW cloaking, the
 * confidence automaton, mode restrictions and statistics.
 */

#include <gtest/gtest.h>

#include "core/cloaking.hh"

namespace rarpred {
namespace {

/** Builds committed-trace records directly. */
class TraceFeeder
{
  public:
    explicit TraceFeeder(CloakingEngine &engine) : engine_(engine) {}

    LoadOutcome
    load(uint64_t pc, uint64_t addr, uint64_t value)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc;
        di.op = Opcode::Lw;
        di.dst = 1;
        di.src1 = 2;
        di.eaddr = addr;
        di.value = value;
        return engine_.processInst(di);
    }

    void
    store(uint64_t pc, uint64_t addr, uint64_t value)
    {
        DynInst di;
        di.seq = seq_++;
        di.pc = pc;
        di.op = Opcode::Sw;
        di.src1 = 2;
        di.src2 = 3;
        di.eaddr = addr;
        di.value = value;
        engine_.processInst(di);
    }

  private:
    CloakingEngine &engine_;
    uint64_t seq_ = 0;
};

CloakingConfig
infiniteConfig(CloakingMode mode = CloakingMode::RawPlusRar,
               ConfidenceKind conf = ConfidenceKind::TwoBitAdaptive)
{
    CloakingConfig config;
    config.mode = mode;
    config.ddt.entries = 0; // unbounded detection for unit tests
    config.dpnt.confidence = conf;
    return config;
}

// The paper's Figure 4 sequence: detect a RAR dependence between LD
// and LD', then on the next encounter LD' obtains LD's value through
// the synonym file.
TEST(Cloaking, Figure4RarScenario)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    // First encounter at address A: detection only.
    auto o1 = feed.load(0x100, 0xA000, 7); // LD
    auto o2 = feed.load(0x200, 0xA000, 7); // LD' -> RAR detected
    EXPECT_FALSE(o1.used);
    EXPECT_FALSE(o2.used);
    EXPECT_EQ(engine.stats().detectedRar, 1u);

    // Second encounter, possibly at a different address B.
    auto o3 = feed.load(0x100, 0xB000, 9); // LD produces 9
    auto o4 = feed.load(0x200, 0xB000, 9); // LD' consumes
    EXPECT_FALSE(o3.used);
    ASSERT_TRUE(o4.used);
    EXPECT_TRUE(o4.correct);
    EXPECT_EQ(o4.type, DepType::Rar);
    EXPECT_EQ(engine.stats().coveredRar, 1u);
    EXPECT_EQ(engine.stats().mispredicted(), 0u);
}

TEST(Cloaking, RawCloakingStoreToLoad)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    feed.store(0x100, 0xA000, 5);
    feed.load(0x200, 0xA000, 5); // RAW detected
    EXPECT_EQ(engine.stats().detectedRaw, 1u);

    feed.store(0x100, 0xA000, 6); // produces 6 under the synonym
    auto o = feed.load(0x200, 0xA000, 6);
    ASSERT_TRUE(o.used);
    EXPECT_TRUE(o.correct);
    EXPECT_EQ(o.type, DepType::Raw);
    EXPECT_EQ(engine.stats().coveredRaw, 1u);
}

TEST(Cloaking, MispredictionWhenValueChanges)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7); // train
    feed.load(0x100, 0xA000, 7); // LD produces 7
    // A store to the address slips between LD and LD' but the pair is
    // still predicted: LD' reads 8, the synonym holds 7.
    feed.store(0x300, 0xA000, 8);
    auto o = feed.load(0x200, 0xA000, 8);
    ASSERT_TRUE(o.used);
    EXPECT_FALSE(o.correct);
    EXPECT_EQ(engine.stats().mispredRar, 1u);
}

TEST(Cloaking, AdaptiveLockoutAfterMisprediction)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7); // train
    feed.load(0x100, 0xA000, 1);
    feed.store(0x300, 0xA000, 2);
    auto wrong = feed.load(0x200, 0xA000, 2);
    ASSERT_TRUE(wrong.used && !wrong.correct);

    // Next two encounters verify correctly but must not be *used*.
    feed.load(0x100, 0xA000, 3);
    auto shadow1 = feed.load(0x200, 0xA000, 3);
    EXPECT_FALSE(shadow1.used);
    feed.load(0x100, 0xA000, 4);
    auto shadow2 = feed.load(0x200, 0xA000, 4);
    EXPECT_FALSE(shadow2.used);
    // Two correct shadow predictions re-arm the automaton.
    feed.load(0x100, 0xA000, 5);
    auto rearmed = feed.load(0x200, 0xA000, 5);
    EXPECT_TRUE(rearmed.used);
    EXPECT_TRUE(rearmed.correct);
}

TEST(Cloaking, OneBitKeepsUsingAfterMisprediction)
{
    CloakingEngine engine(infiniteConfig(
        CloakingMode::RawPlusRar, ConfidenceKind::OneBitNonAdaptive));
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7);
    feed.load(0x100, 0xA000, 1);
    feed.store(0x300, 0xA000, 2);
    auto wrong = feed.load(0x200, 0xA000, 2);
    ASSERT_TRUE(wrong.used && !wrong.correct);
    feed.load(0x100, 0xA000, 3);
    auto next = feed.load(0x200, 0xA000, 3);
    EXPECT_TRUE(next.used); // non-adaptive: still speculating
}

TEST(Cloaking, RawOnlyModeIgnoresRarDependences)
{
    CloakingEngine engine(infiniteConfig(CloakingMode::RawOnly));
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7);
    feed.load(0x100, 0xA000, 9);
    auto o = feed.load(0x200, 0xA000, 9);
    EXPECT_FALSE(o.used);
    EXPECT_EQ(engine.stats().detectedRar, 0u);
    EXPECT_EQ(engine.stats().coveredRar, 0u);
}

TEST(Cloaking, RarOnlyModeIgnoresRawDependences)
{
    CloakingEngine engine(infiniteConfig(CloakingMode::RarOnly));
    TraceFeeder feed(engine);

    feed.store(0x100, 0xA000, 5);
    feed.load(0x200, 0xA000, 5);
    feed.store(0x100, 0xA000, 6);
    auto o = feed.load(0x200, 0xA000, 6);
    EXPECT_FALSE(o.used);
    EXPECT_EQ(engine.stats().detectedRaw, 0u);
}

TEST(Cloaking, SelfRarActsAsLastValue)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7); // records itself
    auto o1 = feed.load(0x100, 0xA000, 7); // self-RAR detected; trains
    EXPECT_EQ(engine.stats().detectedRar, 1u);
    (void)o1;
    // The third execution is the first decoded as a producer, so it
    // deposits; the fourth consumes the deposited value.
    auto o2 = feed.load(0x100, 0xA000, 7);
    (void)o2;
    auto o3 = feed.load(0x100, 0xA000, 7);
    ASSERT_TRUE(o3.used);
    EXPECT_TRUE(o3.correct);
}

TEST(Cloaking, LoadChainPropagatesThroughSingleGroup)
{
    // LOAD1-USE ... LOADN chains: all sinks of one source share the
    // source's value through one synonym.
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7);
    feed.load(0x300, 0xA000, 7);
    // Next encounter: both sinks get the value from LOAD1.
    feed.load(0x100, 0xB000, 9);
    auto o2 = feed.load(0x200, 0xB000, 9);
    auto o3 = feed.load(0x300, 0xB000, 9);
    EXPECT_TRUE(o2.used && o2.correct);
    EXPECT_TRUE(o3.used && o3.correct);
}

TEST(Cloaking, StatsCountLoadsAndStores)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);
    feed.load(0x100, 0xA000, 1);
    feed.store(0x200, 0xB000, 2);
    feed.load(0x300, 0xC000, 3);
    EXPECT_EQ(engine.stats().loads, 2u);
    EXPECT_EQ(engine.stats().stores, 1u);
}

TEST(Cloaking, NonMemoryInstructionsAreIgnored)
{
    CloakingEngine engine(infiniteConfig());
    DynInst di;
    di.op = Opcode::Add;
    auto o = engine.processInst(di);
    EXPECT_FALSE(o.wasLoad);
    EXPECT_EQ(engine.stats().loads, 0u);
}

TEST(Cloaking, FiniteDdtLimitsDetection)
{
    CloakingConfig config = infiniteConfig();
    config.ddt.entries = 2;
    CloakingEngine engine(config);
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    // Distant re-reference: the entry is evicted before the sink.
    feed.load(0x500, 0xB000, 1);
    feed.load(0x504, 0xC000, 2);
    feed.load(0x200, 0xA000, 7);
    EXPECT_EQ(engine.stats().detectedRar, 0u);
}

TEST(Cloaking, ProducerSeqTracksLatestProducer)
{
    CloakingEngine engine(infiniteConfig());
    TraceFeeder feed(engine);
    feed.load(0x100, 0xA000, 7);  // seq 0
    feed.load(0x200, 0xA000, 7);  // seq 1, trains
    feed.load(0x100, 0xA000, 7);  // seq 2, produces
    auto o = feed.load(0x200, 0xA000, 7); // seq 3, consumes
    ASSERT_TRUE(o.used);
    EXPECT_EQ(o.producerSeq, 2u);
    EXPECT_FALSE(o.producerIsStore);
}

TEST(Cloaking, PredictedEmptyCountsConsumerWithoutValue)
{
    // Train a pair, then evict the SF entry so the consumer predicts
    // but finds no value.
    CloakingConfig config = infiniteConfig();
    config.sf = {2, 0};
    CloakingEngine engine(config);
    TraceFeeder feed(engine);

    feed.load(0x100, 0xA000, 7);
    feed.load(0x200, 0xA000, 7); // train; synonym allocated
    feed.load(0x100, 0xA000, 7); // produce into SF
    // Unrelated pairs flush the 2-entry SF.
    for (uint64_t i = 0; i < 3; ++i) {
        feed.load(0x400 + i * 8, 0xD000 + i * 8, 1);
        feed.load(0x600 + i * 8, 0xD000 + i * 8, 1);
        feed.load(0x400 + i * 8, 0xD000 + i * 8, 1);
        feed.load(0x600 + i * 8, 0xD000 + i * 8, 1);
    }
    uint64_t before = engine.stats().predictedEmpty;
    feed.load(0x200, 0xE000, 3); // consumer; SF entry evicted
    EXPECT_GE(engine.stats().predictedEmpty, before);
}

} // namespace
} // namespace rarpred
