/**
 * @file
 * Unit tests for the Synonym File.
 */

#include <gtest/gtest.h>

#include "core/synonym_file.hh"

namespace rarpred {
namespace {

TEST(SynonymFile, AllocateCreatesEmptyEntry)
{
    SynonymFile sf({0, 0});
    sf.allocate(7);
    SfEntry *e = sf.consume(7);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->full);
}

TEST(SynonymFile, ProduceThenConsume)
{
    SynonymFile sf({0, 0});
    sf.produce(7, 0xdead, true, 0x100, 42);
    SfEntry *e = sf.consume(7);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->full);
    EXPECT_EQ(e->value, 0xdeadu);
    EXPECT_TRUE(e->fromStore);
    EXPECT_EQ(e->producerPc, 0x100u);
    EXPECT_EQ(e->producerSeq, 42u);
}

TEST(SynonymFile, ProduceOverwritesPreviousValue)
{
    SynonymFile sf({0, 0});
    sf.produce(7, 1, true, 0x100, 1);
    sf.produce(7, 2, false, 0x200, 2);
    SfEntry *e = sf.consume(7);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 2u);
    EXPECT_FALSE(e->fromStore);
}

TEST(SynonymFile, MissReturnsNull)
{
    SynonymFile sf({0, 0});
    EXPECT_EQ(sf.consume(3), nullptr);
    EXPECT_EQ(sf.peek(3), nullptr);
}

TEST(SynonymFile, FiniteGeometryEvicts)
{
    SynonymFile sf({4, 0}); // 4-entry fully associative
    for (Synonym s = 1; s <= 8; ++s)
        sf.produce(s, s, false, 0, 0);
    EXPECT_EQ(sf.consume(1), nullptr);
    ASSERT_NE(sf.consume(8), nullptr);
    EXPECT_EQ(sf.size(), 4u);
}

TEST(SynonymFile, SetAssociativeConflicts)
{
    SynonymFile sf({8, 2}); // 4 sets; synonyms 1, 5, 9 share set 1
    sf.produce(1, 11, false, 0, 0);
    sf.produce(5, 55, false, 0, 0);
    sf.produce(9, 99, false, 0, 0); // evicts synonym 1
    EXPECT_EQ(sf.consume(1), nullptr);
    ASSERT_NE(sf.consume(5), nullptr);
    ASSERT_NE(sf.consume(9), nullptr);
}

TEST(SynonymFile, ClearEmptiesTable)
{
    SynonymFile sf({0, 0});
    sf.produce(7, 1, false, 0, 0);
    sf.clear();
    EXPECT_EQ(sf.consume(7), nullptr);
    EXPECT_EQ(sf.size(), 0u);
}

} // namespace
} // namespace rarpred
