/**
 * @file
 * Cross-module integration tests: the full stack (workload -> VM ->
 * cloaking engine / timing CPU) must reproduce the paper's headline
 * relationships on representative programs.
 */

#include <gtest/gtest.h>

#include "analysis/locality.hh"
#include "core/cloaking.hh"
#include "core/value_predictor.hh"
#include "cpu/ooo_cpu.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

CloakingConfig
paperAccuracyConfig(CloakingMode mode = CloakingMode::RawPlusRar,
                    ConfidenceKind conf = ConfidenceKind::TwoBitAdaptive)
{
    CloakingConfig config;
    config.mode = mode;
    config.ddt.entries = 128;
    config.dpnt.confidence = conf;
    return config;
}

CloakingStats
runAccuracy(const std::string &abbrev, const CloakingConfig &config)
{
    CloakingEngine engine(config);
    Program p = findWorkload(abbrev).build(1);
    MicroVM vm(p);
    vm.run(engine, 50'000'000ull);
    return engine.stats();
}

TEST(Integration, RarLocalityIsHighEverywhere)
{
    // Section 2's headline: locality(4) above 70% for every program.
    for (const char *abbrev : {"gcc", "li", "tom", "fp*"}) {
        RarLocalityAnalyzer analyzer(0, 4);
        Program p = findWorkload(abbrev).build(1);
        MicroVM vm(p);
        vm.run(analyzer, 50'000'000ull);
        ASSERT_GT(analyzer.sinkExecutions(), 0u) << abbrev;
        EXPECT_GT(analyzer.locality()[3], 0.7) << abbrev;
    }
}

TEST(Integration, AdaptiveCutsMisspeculationByOrderOfMagnitude)
{
    // Section 5.3: the 2-bit automaton trades a sliver of coverage
    // for roughly an order of magnitude fewer misspeculations.
    for (const char *abbrev : {"li", "tom"}) {
        auto naive = runAccuracy(
            abbrev, paperAccuracyConfig(
                        CloakingMode::RawPlusRar,
                        ConfidenceKind::OneBitNonAdaptive));
        auto adaptive = runAccuracy(abbrev, paperAccuracyConfig());
        ASSERT_GT(naive.mispredicted(), 0u) << abbrev;
        EXPECT_LT(adaptive.mispredictionRate() * 5,
                  naive.mispredictionRate())
            << abbrev;
        EXPECT_GT(adaptive.coverage(), naive.coverage() * 0.7)
            << abbrev;
    }
}

TEST(Integration, RarExtensionAddsCoverage)
{
    // RAW+RAR must cover strictly more loads than RAW alone, and the
    // gain must be larger for fp codes than for int codes (Figure 6).
    auto gain = [&](const char *abbrev) {
        auto raw =
            runAccuracy(abbrev, paperAccuracyConfig(CloakingMode::RawOnly));
        auto both = runAccuracy(abbrev, paperAccuracyConfig());
        return both.coverage() - raw.coverage();
    };
    double fp_gain = gain("hyd");
    double int_gain = gain("gcc");
    EXPECT_GT(fp_gain, 0.2);  // fp codes gain a lot
    EXPECT_GT(int_gain, 0.0); // int codes gain some
    EXPECT_GT(fp_gain, int_gain);
}

TEST(Integration, IntCodesRawDominatedFpCodesRarDominated)
{
    // Figure 5's key asymmetry at the 128-entry DDT design point.
    auto li = runAccuracy("li", paperAccuracyConfig());
    EXPECT_GT(li.detectedRaw, li.detectedRar);
    auto hyd = runAccuracy("hyd", paperAccuracyConfig());
    EXPECT_GT(hyd.detectedRar, hyd.detectedRaw * 2);
}

TEST(Integration, MisspeculationRatesAreSmallWithAdaptive)
{
    for (const char *abbrev : {"gcc", "li", "tom", "hyd", "fp*"}) {
        auto stats = runAccuracy(abbrev, paperAccuracyConfig());
        EXPECT_LT(stats.mispredictionRate(), 0.05) << abbrev;
    }
}

TEST(Integration, CloakingComplementsValuePrediction)
{
    // Table 5.2: loads exist that cloaking gets and the last-value
    // predictor does not, and vice versa.
    CloakingEngine engine(paperAccuracyConfig());
    LastValuePredictor vp({16384, 0});
    Program p = findWorkload("gcc").build(1);
    MicroVM vm(p);
    DynInst di;
    uint64_t cloak_only = 0, vp_only = 0;
    while (vm.next(di)) {
        auto o = engine.processInst(di);
        bool v = vp.processInst(di);
        if (!o.wasLoad)
            continue;
        bool c = o.used && o.correct;
        cloak_only += c && !v;
        vp_only += v && !c;
    }
    EXPECT_GT(cloak_only, 0u);
    EXPECT_GT(vp_only, 0u);
    EXPECT_GT(cloak_only, vp_only); // paper: usually cloaking wins
}

TEST(Integration, TimingSelectiveSpeedupNonNegative)
{
    // Figure 9 with selective invalidation: cloaking/bypassing must
    // not slow a program down (within noise), and must help an
    // RAR-friendly fp code measurably.
    auto cycles = [&](const char *abbrev, bool cloak_on) {
        CpuConfig config;
        CloakTimingConfig cloak;
        if (cloak_on) {
            cloak.enabled = true;
            cloak.engine.ddt.entries = 128;
            cloak.engine.dpnt.geometry = {8192, 2};
            cloak.engine.sf = {1024, 2};
        }
        OooCpu cpu(config, cloak);
        Program p = findWorkload(abbrev).build(1);
        MicroVM vm(p);
        vm.run(cpu, 50'000'000ull);
        return cpu.stats().cycles;
    };
    uint64_t base = cycles("tom", false);
    uint64_t mech = cycles("tom", true);
    EXPECT_LT((double)mech, 0.99 * (double)base); // > 1% speedup
    uint64_t base_i = cycles("m88", false);
    uint64_t mech_i = cycles("m88", true);
    EXPECT_LE((double)mech_i, 1.005 * (double)base_i);
}

TEST(Integration, SeparateDdtsFixEvictionAnomaly)
{
    // Section 5.6.2: with separate load/store DDTs, RAW detection can
    // only improve.
    CloakingConfig common = paperAccuracyConfig();
    CloakingConfig separate = paperAccuracyConfig();
    separate.ddt.separateTables = true;
    for (const char *abbrev : {"m88", "li"}) {
        auto c = runAccuracy(abbrev, common);
        auto s = runAccuracy(abbrev, separate);
        EXPECT_GE(s.detectedRaw + s.detectedRaw / 100 + 1000,
                  c.detectedRaw)
            << abbrev;
    }
}

} // namespace
} // namespace rarpred
