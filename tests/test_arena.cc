/**
 * @file
 * Unit tests for the bump-pointer Arena and ArenaRing of
 * common/arena.hh, plus the allocation-counter proof that the
 * steady-state simulate loop performs zero heap allocations.
 *
 * This translation unit replaces the global operator new/delete with
 * counting versions; the ZeroAllocSteadyState test warms an OooCpu
 * past the bandwidth-limiter prune cadence (so every flat table has
 * reached its steady-state footprint and owns its spare rehash
 * buffer), snapshots the counter, batches a tail of the trace
 * through the hot loop, and asserts the counter did not move.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/arena.hh"
#include "cpu/cpu_config.hh"
#include "cpu/ooo_cpu.hh"
#include "vm/recorded_trace.hh"
#include "vm/trace.hh"
#include "workload/workload.hh"

// ------------------------------------------- allocation counter

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

void *
countedAlloc(size_t n)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n == 0 ? 1 : n))
        return p;
    throw std::bad_alloc{};
}

} // namespace

void *operator new(size_t n) { return countedAlloc(n); }
void *operator new[](size_t n) { return countedAlloc(n); }
void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n == 0 ? 1 : n);
}
void *
operator new[](size_t n, const std::nothrow_t &) noexcept
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace rarpred {
namespace {

uint64_t
heapAllocs()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

// ------------------------------------------------------- Arena

TEST(Arena, ArraysAreValueInitializedAndAligned)
{
    Arena arena(1024);
    uint64_t *a = arena.allocateArray<uint64_t>(100);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(a[i], 0u);
    EXPECT_EQ((uintptr_t)a % alignof(uint64_t), 0u);

    // Odd-size allocation, then a wider alignment request: the bump
    // pointer must pad up.
    (void)arena.allocateBytes(3, 1);
    void *p = arena.allocateBytes(16, 16);
    EXPECT_EQ((uintptr_t)p % 16, 0u);
    EXPECT_GT(arena.bytesInUse(), 0u);
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk)
{
    Arena arena(256);
    (void)arena.allocateBytes(16, 8);
    ASSERT_EQ(arena.chunkCount(), 1u);
    // Far larger than the chunk granularity: a dedicated chunk big
    // enough for the request appears, and the arena keeps working.
    char *big = (char *)arena.allocateBytes(10'000, 8);
    big[0] = 1;
    big[9'999] = 2;
    EXPECT_GE(arena.chunkCount(), 2u);
    EXPECT_GE(arena.bytesReserved(), 10'000u);
}

TEST(Arena, ResetReusesChunksWithoutNewAllocations)
{
    Arena arena(4096);
    void *first = arena.allocateBytes(1000, 8);
    (void)arena.allocateBytes(3000, 8);
    (void)arena.allocateBytes(5000, 8); // spills into a second chunk
    const size_t reserved = arena.bytesReserved();
    const size_t chunks = arena.chunkCount();

    arena.reset();
    EXPECT_EQ(arena.bytesInUse(), 0u);
    EXPECT_EQ(arena.bytesReserved(), reserved);

    // The same allocation sequence replays into the same memory with
    // zero heap traffic.
    const uint64_t allocs = heapAllocs();
    void *again = arena.allocateBytes(1000, 8);
    (void)arena.allocateBytes(3000, 8);
    (void)arena.allocateBytes(5000, 8);
    EXPECT_EQ(heapAllocs(), allocs);
    EXPECT_EQ(again, first);
    EXPECT_EQ(arena.chunkCount(), chunks);
}

TEST(Arena, ReleasesEverythingOnDestruction)
{
    // RAII: an exception after arena allocations must not leak (ASan
    // in the sanitizer CI job enforces the "no leak" half; this test
    // enforces that unwinding is safe).
    auto boom = [] {
        Arena arena(1024);
        (void)arena.allocateArray<uint64_t>(512);
        throw std::runtime_error("early exit");
    };
    EXPECT_THROW(boom(), std::runtime_error);
}

// ---------------------------------------------------- ArenaRing

TEST(ArenaRing, FifoWithWraparound)
{
    Arena arena;
    ArenaRing<uint64_t> ring;
    ring.init(arena, 5); // rounds up to 8 slots internally
    EXPECT_EQ(ring.capacity(), 5u);
    EXPECT_TRUE(ring.empty());

    // Push/pop cycles long enough to wrap the storage several times.
    uint64_t next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (ring.size() < ring.capacity())
            ring.push_back(next_in++);
        EXPECT_EQ(ring.front(), next_out);
        EXPECT_EQ(ring.back(), next_in - 1);
        for (size_t i = 0; i < ring.size(); ++i)
            EXPECT_EQ(ring[i], next_out + i);
        const size_t drop = 1 + (round % (ring.capacity() - 1));
        for (size_t i = 0; i < drop; ++i) {
            EXPECT_EQ(ring.front(), next_out++);
            ring.pop_front();
        }
    }
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
}

TEST(ArenaRing, InitTakesNoHeapBeyondTheArena)
{
    Arena arena(1 << 20);
    (void)arena.allocateBytes(8, 8); // materialize the chunk
    const uint64_t allocs = heapAllocs();
    ArenaRing<uint64_t> ring;
    ring.init(arena, 1000);
    for (int i = 0; i < 500; ++i)
        ring.push_back(i);
    EXPECT_EQ(heapAllocs(), allocs);
}

// ------------------------------------- zero-alloc steady state

/** The golden-config cloaking timing setup (bounded tables). */
CloakTimingConfig
boundedCloakConfig()
{
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = CloakingMode::RawPlusRar;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.bypassing = true;
    return cloak;
}

TEST(ZeroAlloc, SteadyStateSimulateLoopNeverTouchesTheHeap)
{
    // Steady state establishes only after the bandwidth limiters have
    // been through their prune cadence (65536 records) a few times:
    // each prune tombstones old cycles, and the following inserts
    // trigger the same-capacity purge that materializes the spare
    // rehash buffer. Warm well past that, then measure a 40k tail.
    constexpr uint64_t kTotal = 330'000;
    constexpr uint64_t kTail = 40'000;

    const Workload &w = findWorkload("li");
    const RecordedTrace trace = RecordedTrace::record(w.build(1),
                                                      kTotal);
    ASSERT_EQ(trace.size(), kTotal) << "workload shorter than the "
                                       "warmup this test depends on";

    OooCpu cpu(CpuConfig{}, boundedCloakConfig());
    RecordedTraceSource source(trace);

    DynInst block[kTraceBatch];
    uint64_t consumed = 0;
    while (consumed < kTotal - kTail) {
        const size_t n = source.nextBlock(block, kTraceBatch);
        ASSERT_GT(n, 0u);
        cpu.onBatch(block, n);
        consumed += n;
    }

    const uint64_t allocs_before = heapAllocs();
    while (size_t n = source.nextBlock(block, kTraceBatch)) {
        cpu.onBatch(block, n);
        consumed += n;
    }
    const uint64_t allocs_after = heapAllocs();

    EXPECT_EQ(consumed, kTotal);
    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "the simulate loop allocated "
        << (allocs_after - allocs_before)
        << " times in its steady state";

    // Sanity: the run produced real work and the arena is carrying
    // the per-instruction state it was built for.
    const CpuStats stats = cpu.stats();
    EXPECT_EQ(stats.instructions, kTotal);
    EXPECT_GT(stats.cycles, 0u);
    const OooCpu::HotPathLoads loads = cpu.hotPathLoads();
    EXPECT_GT(loads.arenaReservedBytes, 0u);
    EXPECT_GT(loads.issueBw.lookups, 0u);
    EXPECT_LT(loads.issueBw.loadFactor(), 7.0 / 8.0);
}

} // namespace
} // namespace rarpred
