/**
 * @file
 * Distributed-dispatch battery for the lease-based worker fleet
 * (driver/fleet_dispatcher.hh + rarpred-agent). The contract under
 * test: a sweep leased over TCP to agent processes produces results
 * byte-identical to the serial in-process reference — including when
 * an agent is SIGKILLed mid-lease (the lease expires and the cell is
 * reassigned), when an agent duplicates its result frame (deduped by
 * cell fingerprint, never double-counted), when an agent goes silent
 * past the heartbeat budget (straggler expiry), and when every agent
 * is unreachable (sticky degradation to local execution).
 *
 * Self-skips when the rarpred-agent binary is not built in this tree
 * (RARPRED_DRIVER_DIR).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/fleet_dispatcher.hh"
#include "driver/sim_job_runner.hh"
#include "driver/sweep.hh"
#include "faultinject/driver_faults.hh"
#include "service/proto.hh"
#include "workload/workload.hh"

#ifndef RARPRED_DRIVER_DIR
#define RARPRED_DRIVER_DIR ""
#endif

namespace rarpred::driver {
namespace {

constexpr uint64_t kMaxInsts = 20000;

std::string
agentBinary()
{
    return std::string(RARPRED_DRIVER_DIR) + "/rarpred-agent";
}

/** One rarpred-agent subprocess on a kernel-assigned loopback port. */
struct AgentProc
{
    int pid = -1;
    uint16_t port = 0;

    bool live() const { return pid > 0; }
};

/**
 * Launch an agent with --port=0 and parse the bound port from its
 * "agent.port N" stdout line. @p extra_env arms agent-side fault
 * points (e.g. "RARPRED_FAULT=agent_kill:3"); "" for none.
 */
AgentProc
spawnAgent(const std::string &tag, const std::string &extra_env = "")
{
    AgentProc agent;
    const std::string dir = ::testing::TempDir();
    const std::string portfile = dir + "agent_" + tag + ".port";
    const std::string pidfile = dir + "agent_" + tag + ".pid";
    std::remove(portfile.c_str());
    std::remove(pidfile.c_str());
    const std::string cmd = extra_env + " " + agentBinary() +
                            " --port=0 --workers=2 > " + portfile +
                            " 2>/dev/null & echo $! > " + pidfile;
    if (std::system(("sh -c '" + cmd + "'").c_str()) != 0)
        return agent;
    for (int i = 0; i < 200; ++i) {
        std::ifstream in(portfile);
        std::string word;
        unsigned port = 0;
        if (in >> word >> port && word == "agent.port" && port != 0) {
            std::ifstream pf(pidfile);
            pf >> agent.pid;
            agent.port = (uint16_t)port;
            return agent;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return agent;
}

void
stopAgent(AgentProc &agent)
{
    if (!agent.live())
        return;
    ::kill(agent.pid, SIGTERM);
    for (int i = 0; i < 200; ++i) {
        if (::kill(agent.pid, 0) != 0) {
            agent.pid = -1;
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::kill(agent.pid, SIGKILL);
    agent.pid = -1;
}

class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!std::ifstream(agentBinary()).good())
            GTEST_SKIP() << "rarpred-agent not built in this tree";
    }

    void
    TearDown() override
    {
        disarmDriverFaults();
        for (AgentProc &a : agents_)
            stopAgent(a);
    }

    /** Spawn + track an agent; stopped (if still live) at TearDown.
     *  Returned by value: agents_ may reallocate on later spawns. */
    AgentProc
    agent(const std::string &tag, const std::string &extra_env = "")
    {
        agents_.push_back(spawnAgent(tag, extra_env));
        return agents_.back();
    }

    std::vector<AgentProc> agents_;
};

/** All 18 paper workloads x the RAR cloaking config: 18 cells. */
std::vector<service::CellConfigMsg>
testGrid()
{
    service::CellConfigMsg rar;
    rar.cloakEnabled = 1;
    return {rar};
}

struct GridRun
{
    std::vector<CpuStats> cells;
    FleetStats fleet;
    bool hadFleet = false;
    Status status;
};

/** Run the full-workload grid; empty @p agents = serial reference. */
GridRun
runGrid(const std::string &agents)
{
    RunnerConfig rc;
    rc.workers = agents.empty() ? 1 : 4;
    rc.maxInsts = kMaxInsts;
    rc.remoteAgents = agents;
    SimJobRunner runner(rc);

    auto swept = runCellSweep(runner, allWorkloadPtrs(), testGrid());

    GridRun out;
    out.status = swept.status;
    if (swept.status.ok())
        for (size_t i = 0; i < swept.size(); ++i)
            out.cells.push_back(swept[i]);
    if (FleetDispatcher *fleet = runner.fleet()) {
        out.fleet = fleet->stats();
        out.hadFleet = true;
    }
    return out;
}

void
expectByteIdentical(const GridRun &got, const GridRun &want)
{
    ASSERT_TRUE(got.status.ok()) << got.status.toString();
    ASSERT_TRUE(want.status.ok()) << want.status.toString();
    ASSERT_EQ(got.cells.size(), want.cells.size());
    for (size_t i = 0; i < got.cells.size(); ++i)
        EXPECT_EQ(std::memcmp(&got.cells[i], &want.cells[i],
                              sizeof(CpuStats)),
                  0)
            << "cell " << i << " diverged from the serial reference";
}

std::string
loopback(const AgentProc &agent)
{
    return "127.0.0.1:" + std::to_string(agent.port);
}

// -------------------------------------------------- address parsing

TEST(FleetParse, AcceptsHostPortLists)
{
    auto one = FleetDispatcher::parseAgentList("127.0.0.1:4000");
    ASSERT_TRUE(one.ok()) << one.status().toString();
    ASSERT_EQ(one->size(), 1u);
    EXPECT_EQ((*one)[0].first, "127.0.0.1");
    EXPECT_EQ((*one)[0].second, 4000);

    auto two =
        FleetDispatcher::parseAgentList("10.0.0.1:1,10.0.0.2:65535");
    ASSERT_TRUE(two.ok()) << two.status().toString();
    ASSERT_EQ(two->size(), 2u);
    EXPECT_EQ((*two)[1].second, 65535);
}

TEST(FleetParse, RejectsMalformedEntries)
{
    EXPECT_FALSE(FleetDispatcher::parseAgentList("").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList("noport").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList("host:").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList("host:0").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList("host:65536").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList("host:12x").ok());
    EXPECT_FALSE(FleetDispatcher::parseAgentList(",,").ok());
}

// ------------------------------------------------------ byte identity

TEST_F(FleetTest, LoopbackSweepMatchesSerialByteForByte)
{
    const GridRun serial = runGrid("");
    const AgentProc a = agent("loopback");
    ASSERT_TRUE(a.live()) << "agent failed to start";
    const GridRun fleet = runGrid(loopback(a));
    expectByteIdentical(fleet, serial);
    ASSERT_TRUE(fleet.hadFleet);
    EXPECT_EQ(fleet.fleet.resultsAccepted, 18u)
        << "cells did not actually run on the agent";
    EXPECT_EQ(fleet.fleet.leasesExpired, 0u);
    EXPECT_EQ(fleet.fleet.determinismViolations, 0u);
    EXPECT_FALSE(fleet.fleet.degraded);
}

// ---------------------------------------------- agent loss + leases

TEST_F(FleetTest, AgentKillMidSweepReassignsTheLease)
{
    const GridRun serial = runGrid("");
    const AgentProc healthy = agent("survivor");
    ASSERT_TRUE(healthy.live());
    // The doomed agent raises SIGKILL on its 4th lease: the POLLHUP
    // expires that lease and the cell must be reassigned to the
    // survivor, costing a retry, never a wrong or missing cell.
    const AgentProc doomed =
        agent("doomed", "RARPRED_FAULT=agent_kill:3");
    ASSERT_TRUE(doomed.live());
    const GridRun fleet =
        runGrid(loopback(healthy) + "," + loopback(doomed));
    expectByteIdentical(fleet, serial);
    ASSERT_TRUE(fleet.hadFleet);
    EXPECT_GE(fleet.fleet.leasesExpired, 1u);
    EXPECT_GE(fleet.fleet.leasesReassigned, 1u);
    EXPECT_EQ(fleet.fleet.resultsAccepted, 18u);
    EXPECT_EQ(fleet.fleet.determinismViolations, 0u);
    EXPECT_FALSE(fleet.fleet.degraded);
}

TEST_F(FleetTest, UnreachableFleetDegradesAndRunsLocally)
{
    const GridRun serial = runGrid("");
    // Port 1 on loopback: connects are refused, every agent demotes
    // after its consecutive-failure budget, and the dispatcher goes
    // sticky-degraded — each cell falls back to local execution with
    // identical results.
    const GridRun fleet = runGrid("127.0.0.1:1");
    expectByteIdentical(fleet, serial);
    ASSERT_TRUE(fleet.hadFleet);
    EXPECT_TRUE(fleet.fleet.degraded);
    EXPECT_GE(fleet.fleet.agentsDemoted, 1u);
    EXPECT_GE(fleet.fleet.connectFailures, 1u);
    EXPECT_EQ(fleet.fleet.resultsAccepted, 0u);
}

// --------------------------------------- duplicates + determinism

TEST_F(FleetTest, DuplicateLeaseResultIsDedupedByFingerprint)
{
    const GridRun serial = runGrid("");
    // The agent sends its 3rd LeaseResult twice. The duplicate must
    // be recognized by cell fingerprint, compared byte-for-byte
    // against the accepted completion, and dropped — never credited
    // to another cell.
    const AgentProc a = agent("dup", "RARPRED_FAULT=result_dup:2");
    ASSERT_TRUE(a.live());
    const GridRun fleet = runGrid(loopback(a));
    expectByteIdentical(fleet, serial);
    ASSERT_TRUE(fleet.hadFleet);
    EXPECT_GE(fleet.fleet.duplicateResults, 1u);
    EXPECT_EQ(fleet.fleet.determinismViolations, 0u);
    EXPECT_EQ(fleet.fleet.resultsAccepted, 18u);
}

// ------------------------------------------------------- stragglers

TEST_F(FleetTest, StragglerPastHeartbeatBudgetExpiresAndRetries)
{
    // Drive the dispatcher directly with a tight heartbeat budget:
    // the agent's first lease stalls 3 s before beaconing (net_slow),
    // which must expire the lease at ~0.5 s of silence; the retry on
    // a fresh connection (fault consumed) completes the cell.
    const AgentProc a = agent("slow", "RARPRED_FAULT=net_slow:0");
    ASSERT_TRUE(a.live());

    FleetConfig config;
    config.agents = loopback(a);
    config.heartbeatTimeoutMs = 500;
    FleetDispatcher fleet(config);
    ASSERT_TRUE(fleet.start().ok());

    WorkerJobDesc job;
    job.token = 0;
    job.workload = allWorkloadPtrs()[0]->abbrev;
    job.maxInsts = kMaxInsts;
    job.config = testGrid()[0];
    auto r = fleet.runJob(job);
    ASSERT_TRUE(r.ok()) << r.status().toString();

    const FleetStats stats = fleet.stats();
    EXPECT_GE(stats.leasesExpired, 1u);
    EXPECT_GE(stats.leasesReassigned, 1u);
    EXPECT_EQ(stats.resultsAccepted, 1u);
    EXPECT_FALSE(stats.degraded);
    fleet.stop();
}

// -------------------------------------------------- lifecycle edges

TEST_F(FleetTest, StoppedDispatcherRefusesWork)
{
    const AgentProc a = agent("stopped");
    ASSERT_TRUE(a.live());
    FleetConfig config;
    config.agents = loopback(a);
    FleetDispatcher fleet(config);
    ASSERT_TRUE(fleet.start().ok());
    fleet.stop();

    WorkerJobDesc job;
    job.workload = allWorkloadPtrs()[0]->abbrev;
    job.maxInsts = kMaxInsts;
    job.config = testGrid()[0];
    EXPECT_EQ(fleet.runJob(job).status().code(),
              StatusCode::Unavailable);
    EXPECT_TRUE(fleet.degraded());
}

} // namespace
} // namespace rarpred::driver
