/**
 * @file
 * Crash-containment battery for the process-isolated worker pool
 * (driver/worker_pool.hh). The contract under test: results computed
 * in sandboxed worker processes are byte-identical to the serial
 * in-process reference, and every way a worker can die — SIGKILL
 * mid-job, a wedge with no heartbeats, a torn result stream, spawn
 * flapping, a missing worker binary — costs at most a retry or a
 * transparent in-process fallback, never the sweep and never the
 * host process. After stop(), every child has been reaped: a drained
 * pool leaves no zombies behind.
 *
 * Self-skips when the rarpred-worker binary is not built in this
 * tree (the pool resolves it next to the test executable, then in
 * the sibling driver/ directory).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "driver/sim_job_runner.hh"
#include "driver/sweep.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"
#include "service/proto.hh"
#include "workload/workload.hh"

namespace rarpred::driver {
namespace {

constexpr uint64_t kMaxInsts = 20000;

class WorkerPoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (WorkerPool::resolveWorkerBinary("").empty())
            GTEST_SKIP() << "rarpred-worker not built in this tree";
    }

    void
    TearDown() override
    {
        disarmDriverFaults();
        ::unsetenv("RARPRED_WORKER_BIN");
    }
};

/**
 * The chaos drills additionally depend on the kernel delivering
 * SIGCHLD through the pool's self-pipe promptly enough to observe
 * crash/hang recovery within test deadlines. Probe explicitly and
 * skip — not fail — where the guarantee is absent (some container
 * kernels and pid-namespace setups); the byte-identity and fallback
 * tests above still run everywhere.
 */
class WorkerPoolChaosTest : public WorkerPoolTest
{
  protected:
    void
    SetUp() override
    {
        WorkerPoolTest::SetUp();
        if (IsSkipped())
            return;
        if (!WorkerPool::probeChildReapCapability())
            GTEST_SKIP() << "kernel lacks the SIGCHLD self-pipe "
                            "delivery ordering the chaos drills need";
    }
};

/** Two workloads x {base core, RAR cloaking}: 4 cells, sub-second. */
std::vector<const Workload *>
testWorkloads()
{
    const auto all = allWorkloadPtrs();
    return {all[0], all[1]};
}

std::vector<service::CellConfigMsg>
testGrid()
{
    service::CellConfigMsg base;
    base.cloakEnabled = 0;
    service::CellConfigMsg rar;
    rar.cloakEnabled = 1;
    return {base, rar};
}

struct GridRun
{
    std::vector<CpuStats> cells;
    WorkerPoolStats pool;
    bool hadPool = false;
    Status status;
};

/** Run the test grid; procWorkers == 0 is the in-process reference. */
GridRun
runGrid(unsigned proc_workers, uint64_t heartbeat_ms = 10000)
{
    RunnerConfig rc;
    rc.workers = proc_workers != 0 ? proc_workers : 1;
    rc.maxInsts = kMaxInsts;
    rc.procWorkers = proc_workers;
    rc.workerHeartbeatTimeoutMs = heartbeat_ms;
    SimJobRunner runner(rc);

    const auto workloads = testWorkloads();
    const auto grid = testGrid();
    auto swept = runCellSweep(runner, workloads, grid);

    GridRun out;
    out.status = swept.status;
    if (swept.status.ok())
        for (size_t i = 0; i < swept.size(); ++i)
            out.cells.push_back(swept[i]);
    if (WorkerPool *pool = runner.workerPool()) {
        out.pool = pool->stats();
        out.hadPool = true;
    }
    return out;
}

void
expectByteIdentical(const GridRun &got, const GridRun &want)
{
    ASSERT_TRUE(got.status.ok()) << got.status.toString();
    ASSERT_TRUE(want.status.ok()) << want.status.toString();
    ASSERT_EQ(got.cells.size(), want.cells.size());
    for (size_t i = 0; i < got.cells.size(); ++i)
        EXPECT_EQ(std::memcmp(&got.cells[i], &want.cells[i],
                              sizeof(CpuStats)),
                  0)
            << "cell " << i << " diverged from the serial reference";
}

// ------------------------------------------------------- byte identity

TEST_F(WorkerPoolTest, ProcResultsMatchSerialByteForByte)
{
    const GridRun serial = runGrid(0);
    const GridRun proc = runGrid(2);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_GE(proc.pool.spawned, 1u);
    EXPECT_EQ(proc.pool.jobsFailed, 0u);
    EXPECT_EQ(proc.pool.restarts, 0u);
    EXPECT_FALSE(proc.pool.degraded);
    // Every dispatched job beaconed at least once on receipt.
    EXPECT_GE(proc.pool.heartbeats, proc.pool.jobsCompleted);
}

// ------------------------------------------------------ crash drills

TEST_F(WorkerPoolChaosTest, SigkilledWorkerIsContainedAndRetried)
{
    const GridRun serial = runGrid(0);
    // The parent arms and consumes the fault, so the worker holding
    // job 2 raises SIGKILL mid-job exactly once; the retry of that
    // attempt runs clean on a respawned worker.
    armDriverFault(DriverFaultPoint::WorkerCrash, 2);
    const GridRun proc = runGrid(2);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_GE(proc.pool.crashes, 1u);
    EXPECT_GE(proc.pool.restarts, 1u);
    EXPECT_FALSE(proc.pool.degraded);
}

TEST_F(WorkerPoolChaosTest, HungWorkerIsKilledAtTheHeartbeatDeadline)
{
    const GridRun serial = runGrid(0);
    armDriverFault(DriverFaultPoint::WorkerHang, 1);
    // A tight heartbeat deadline so the wedge is caught quickly; the
    // workload is small enough that a healthy worker beacons well
    // inside it.
    const GridRun proc = runGrid(2, /*heartbeat_ms=*/1500);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_GE(proc.pool.hangKills, 1u);
    EXPECT_FALSE(proc.pool.degraded);
}

TEST_F(WorkerPoolChaosTest, TornResultIsRejectedByCrcAndRetried)
{
    const GridRun serial = runGrid(0);
    armDriverFault(DriverFaultPoint::WorkerResultTorn, 1);
    const GridRun proc = runGrid(2);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_GE(proc.pool.tornResults, 1u);
    EXPECT_FALSE(proc.pool.degraded);
}

TEST_F(WorkerPoolTest, DuplicateResultFrameIsDroppedNotMisMatched)
{
    const GridRun serial = runGrid(0);
    // The worker holding job 0 sends its JobResult twice. The copy
    // lingers in the connection's byte stream until the next dispatch
    // to that worker, which must recognize the stale token, drop the
    // frame, and keep waiting for its own result — never credit job
    // 0's stats to a different cell. One worker guarantees the
    // poisoned stream is reused.
    armDriverFault(DriverFaultPoint::WorkerResultDup, 0);
    const GridRun proc = runGrid(1);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_GE(proc.pool.staleResults, 1u);
    EXPECT_EQ(proc.pool.jobsFailed, 0u);
    EXPECT_FALSE(proc.pool.degraded);
}

// ------------------------------------------- degradation + fallback

TEST_F(WorkerPoolTest, MissingWorkerBinaryFallsBackInProcess)
{
    const GridRun serial = runGrid(0);
    // The env override wins binary resolution, so the pool cannot
    // find a worker to exec: it must degrade at start() and every
    // cell must run in-process — same results, no failures.
    ::setenv("RARPRED_WORKER_BIN", "/nonexistent/rarpred-worker", 1);
    const GridRun proc = runGrid(2);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_TRUE(proc.pool.degraded);
    EXPECT_EQ(proc.pool.spawned, 0u);
    EXPECT_EQ(proc.pool.jobsDispatched, 0u);
}

TEST_F(WorkerPoolChaosTest, FlappingSpawnsDegradeThePoolNotTheSweep)
{
    const GridRun serial = runGrid(0);
    // Every spawn "succeeds" as a process that exits before its
    // hello. The flap detector must latch after the consecutive-
    // failure budget and the sweep must complete in-process.
    armDriverFault(DriverFaultPoint::WorkerFlap,
                   kDriverFaultAnyIndex, /*times=*/100);
    const GridRun proc = runGrid(2);
    expectByteIdentical(proc, serial);
    ASSERT_TRUE(proc.hadPool);
    EXPECT_TRUE(proc.pool.degraded);
    EXPECT_GE(proc.pool.spawnFailures, 3u);
    EXPECT_EQ(proc.pool.jobsCompleted, 0u);
}

// ------------------------------------------------------- no zombies

TEST_F(WorkerPoolTest, StopReapsEveryWorkerNoZombiesLeft)
{
    WorkerPoolConfig cfg;
    cfg.workers = 2;
    WorkerPool pool(cfg);
    ASSERT_TRUE(pool.start().ok());

    WorkerJobDesc job;
    job.token = 0;
    job.workload = testWorkloads()[0]->abbrev;
    job.maxInsts = kMaxInsts;
    job.config = testGrid()[1];
    auto r = pool.runJob(job);
    ASSERT_TRUE(r.ok()) << r.status().toString();

    pool.stop();
    const WorkerPoolStats stats = pool.stats();
    EXPECT_GE(stats.spawned, 1u);
    EXPECT_EQ(stats.spawned, stats.reaped)
        << "stop() left children unreaped";

    // Nothing is left for a wildcard wait: no zombie children at all
    // (the test process has no children besides the pool's).
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);

    // After stop, the pool refuses work instead of spawning anew.
    EXPECT_EQ(pool.runJob(job).status().code(),
              StatusCode::Unavailable);
}

TEST_F(WorkerPoolTest, WorkerReportsUnknownWorkloadAsAnError)
{
    WorkerPoolConfig cfg;
    cfg.workers = 1;
    WorkerPool pool(cfg);
    ASSERT_TRUE(pool.start().ok());

    WorkerJobDesc job;
    job.workload = "no-such-workload";
    job.config = testGrid()[0];
    const auto r = pool.runJob(job);
    ASSERT_FALSE(r.ok());
    // A clean application-level error from a healthy worker: not
    // Unavailable (which would mean "pool can't serve") and the
    // worker survives to serve the next job.
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    job.workload = testWorkloads()[0]->abbrev;
    job.maxInsts = kMaxInsts;
    EXPECT_TRUE(pool.runJob(job).ok());
    pool.stop();
    const WorkerPoolStats stats = pool.stats();
    EXPECT_EQ(stats.spawned, 1u) << "error must not cost the worker";
    EXPECT_EQ(stats.spawned, stats.reaped);
}

} // namespace
} // namespace rarpred::driver
