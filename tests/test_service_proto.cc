/**
 * @file
 * Wire-protocol battery for the sweep service (service/proto.hh):
 * round trips for every message, and a decoder fuzz battery —
 * truncated, CRC-corrupted, oversized-length and interleaved frames
 * must all surface as recoverable Status values, never as a crash, a
 * hang, or an unbounded allocation. Message decoders are additionally
 * fuzzed with random bytes: a malicious request must never reach a
 * table constructor that panics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "driver/stats_merger.hh"
#include "service/proto.hh"

namespace rarpred::service {
namespace {

SweepRequestMsg
sampleRequest()
{
    SweepRequestMsg req;
    req.tenant = "team-a";
    req.scale = 2;
    req.maxInsts = 123456;
    req.deadlineMs = 9000;
    req.workloads = {"li", "com"};
    CellConfigMsg base;
    base.cloakEnabled = 0;
    CellConfigMsg rar;
    rar.cloakEnabled = 1;
    req.configs = {base, rar};
    return req;
}

// ---------------------------------------------------------- framing

TEST(ServiceFraming, EncodeDecodeRoundTrip)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    const auto bytes = encodeFrame(FrameType::Row, payload);

    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    bool have = false;
    ASSERT_TRUE(dec.next(&frame, &have).ok());
    ASSERT_TRUE(have);
    EXPECT_EQ(frame.type, FrameType::Row);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(dec.buffered(), 0u);

    // No second frame.
    ASSERT_TRUE(dec.next(&frame, &have).ok());
    EXPECT_FALSE(have);
}

TEST(ServiceFraming, TruncatedFrameWaitsForMoreBytes)
{
    const auto bytes =
        encodeFrame(FrameType::SweepRequest, sampleRequest().encode());

    // Trickle one byte at a time: at every prefix the decoder must
    // report "no frame yet" with an OK status, then produce exactly
    // one frame at the final byte.
    FrameDecoder dec;
    Frame frame;
    bool have = false;
    for (size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_TRUE(dec.feed(&bytes[i], 1).ok());
        ASSERT_TRUE(dec.next(&frame, &have).ok()) << "byte " << i;
        EXPECT_EQ(have, i == bytes.size() - 1) << "byte " << i;
    }
    ASSERT_TRUE(have);
    EXPECT_EQ(frame.type, FrameType::SweepRequest);
}

TEST(ServiceFraming, InterleavedFramesDecodeInOrder)
{
    std::vector<uint8_t> wire;
    for (uint8_t i = 0; i < 5; ++i) {
        const std::vector<uint8_t> payload(i, i);
        const auto f = encodeFrame(FrameType::Row, payload);
        wire.insert(wire.end(), f.begin(), f.end());
    }
    const auto done = encodeFrame(FrameType::SweepDone,
                                  SweepDoneMsg{}.encode());
    wire.insert(wire.end(), done.begin(), done.end());

    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(wire.data(), wire.size()).ok());
    Frame frame;
    bool have = false;
    for (uint8_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(dec.next(&frame, &have).ok());
        ASSERT_TRUE(have);
        EXPECT_EQ(frame.type, FrameType::Row);
        EXPECT_EQ(frame.payload.size(), i);
    }
    ASSERT_TRUE(dec.next(&frame, &have).ok());
    ASSERT_TRUE(have);
    EXPECT_EQ(frame.type, FrameType::SweepDone);
}

TEST(ServiceFraming, CrcCorruptionLatches)
{
    auto bytes = encodeFrame(FrameType::StatusRequest, {});
    bytes[bytes.size() - 5] ^= 0x40; // flip a bit inside the frame

    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    bool have = true;
    const Status s = dec.next(&frame, &have);
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_FALSE(have);

    // The error latches: feeding good bytes afterwards cannot
    // resynchronize a stream that has already lied once.
    const auto good = encodeFrame(FrameType::StatusRequest, {});
    EXPECT_EQ(dec.feed(good.data(), good.size()).code(),
              StatusCode::Corruption);
    EXPECT_EQ(dec.next(&frame, &have).code(), StatusCode::Corruption);
    EXPECT_FALSE(have);
}

TEST(ServiceFraming, WrongMagicIsCorruption)
{
    auto bytes = encodeFrame(FrameType::StatusRequest, {});
    bytes[0] ^= 0xff;
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    bool have = false;
    EXPECT_EQ(dec.next(&frame, &have).code(), StatusCode::Corruption);
}

TEST(ServiceFraming, OversizedLengthRejectedWithoutAllocation)
{
    // Header claiming a 256MiB payload: must be rejected from the 9
    // header bytes alone — the decoder may never try to buffer it.
    std::vector<uint8_t> bytes;
    const uint32_t magic = kFrameMagic;
    for (int i = 0; i < 4; ++i)
        bytes.push_back((uint8_t)(magic >> (8 * i)));
    bytes.push_back((uint8_t)FrameType::Row);
    const uint32_t huge = 256u << 20;
    for (int i = 0; i < 4; ++i)
        bytes.push_back((uint8_t)(huge >> (8 * i)));

    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    bool have = false;
    EXPECT_EQ(dec.next(&frame, &have).code(), StatusCode::Corruption);
    EXPECT_LT(dec.buffered(), 64u);
}

TEST(ServiceFraming, UnknownFrameTypeIsCorruption)
{
    auto bytes = encodeFrame(FrameType::Row, {});
    bytes[4] = 0x7f; // not a FrameType; rejected before the CRC read
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    bool have = false;
    EXPECT_EQ(dec.next(&frame, &have).code(), StatusCode::Corruption);
    EXPECT_FALSE(have);
}

TEST(ServiceFraming, FuzzedFramesNeverCrashTheDecoder)
{
    // Deterministic mutation fuzz: take valid frames, flip random
    // bytes/truncate/extend, and demand the decoder always returns
    // (OK or Corruption) without producing a bogus frame type.
    Rng rng(0xf00dULL);
    const auto base =
        encodeFrame(FrameType::SweepRequest, sampleRequest().encode());
    for (int round = 0; round < 2000; ++round) {
        std::vector<uint8_t> bytes = base;
        const int mutations = 1 + (int)rng.below(4);
        for (int m = 0; m < mutations; ++m) {
            switch (rng.below(3)) {
              case 0: // flip a byte
                bytes[rng.below(bytes.size())] ^=
                    (uint8_t)(1 + rng.below(255));
                break;
              case 1: // truncate
                bytes.resize(rng.below(bytes.size() + 1));
                break;
              default: // append garbage
                bytes.push_back((uint8_t)rng.below(256));
            }
            if (bytes.empty())
                break;
        }
        FrameDecoder dec;
        (void)dec.feed(bytes.data(), bytes.size());
        Frame frame;
        bool have = false;
        while (dec.next(&frame, &have).ok() && have) {
            EXPECT_TRUE(isKnownFrameType((uint8_t)frame.type));
            have = false;
        }
        EXPECT_LE(dec.buffered(), bytes.size());
    }
}

// --------------------------------------------------------- messages

TEST(ServiceMessages, SweepRequestRoundTrip)
{
    const SweepRequestMsg req = sampleRequest();
    auto decoded = SweepRequestMsg::decode(req.encode());
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded->tenant, "team-a");
    EXPECT_EQ(decoded->scale, 2u);
    EXPECT_EQ(decoded->maxInsts, 123456u);
    EXPECT_EQ(decoded->deadlineMs, 9000u);
    EXPECT_EQ(decoded->workloads, req.workloads);
    ASSERT_EQ(decoded->configs.size(), 2u);
    EXPECT_EQ(decoded->configs[1].cloakEnabled, 1);
    EXPECT_EQ(decoded->numCells(), 4u);
}

TEST(ServiceMessages, RowAndDoneAndErrorRoundTrip)
{
    RowMsg row;
    row.cell = 7;
    row.fromStore = 1;
    row.errorCode = (uint8_t)StatusCode::DeadlineExceeded;
    row.errorMsg = "too slow";
    row.stats.instructions = 42;
    row.stats.specCyclesSaved = 9;
    auto r = RowMsg::decode(row.encode());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->cell, 7u);
    EXPECT_EQ(r->fromStore, 1);
    EXPECT_EQ(r->error().code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(r->stats.instructions, 42u);
    EXPECT_EQ(r->stats.specCyclesSaved, 9u);

    SweepDoneMsg done;
    done.cells = 4;
    done.errors = 1;
    done.storeHits = 2;
    done.errorsJson = "[{\"row\":\"li/cfg0\"}]";
    auto d = SweepDoneMsg::decode(done.encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->storeHits, 2u);
    EXPECT_EQ(d->errorsJson, done.errorsJson);

    ErrorReplyMsg err;
    err.code = (uint8_t)StatusCode::ResourceExhausted;
    err.message = "queue full";
    auto e = ErrorReplyMsg::decode(err.encode());
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e->error().code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(e->error().message(), "queue full");
}

TEST(ServiceMessages, OversizedStringsTruncateOnEncodeAndStillDecode)
{
    // Encode and decode must enforce the *same* string bound: a long
    // error message is truncated (with a marker) by the encoder, and
    // the result decodes cleanly. Before this agreement, a reply
    // whose accumulated error text passed 4 KiB was encoded whole
    // and then rejected client-side as Corruption.
    RowMsg row;
    row.cell = 1;
    row.errorCode = (uint8_t)StatusCode::Internal;
    row.errorMsg.assign(100 * 1024, 'x');
    auto r = RowMsg::decode(row.encode());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->errorMsg.size(), kMaxString);
    EXPECT_NE(r->errorMsg.find(kTruncationMarker), std::string::npos);

    ErrorReplyMsg err;
    err.code = (uint8_t)StatusCode::Internal;
    err.message.assign((1u << 20) + 77, 'y');
    auto e = ErrorReplyMsg::decode(err.encode());
    ASSERT_TRUE(e.ok()) << e.status().toString();
    EXPECT_EQ(e->message.size(), kMaxString);

    // A message exactly at the bound passes through untouched.
    err.message.assign(kMaxString, 'z');
    e = ErrorReplyMsg::decode(err.encode());
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e->message, std::string(kMaxString, 'z'));
}

TEST(ServiceMessages, WorstCaseSweepDoneFitsTheFrameBound)
{
    // Max grid (256x256), every cell failed: the bounded errors JSON
    // must keep the SweepDone payload under kMaxFramePayload — this
    // combination used to trip encodeFrame's assert and abort the
    // daemon — and the bounded report must still be valid-shaped
    // JSON that round-trips.
    constexpr size_t kCells = 256 * 256;
    driver::StatsMerger merger(kCells);
    for (size_t job = 0; job < kCells; ++job) {
        merger.setRowKey(job, "wl" + std::to_string(job / 256) +
                                  "/cfg" + std::to_string(job % 256));
        merger.setError(
            job, Status::deadlineExceeded(
                     "cell deadline of 1ms exceeded at record " +
                     std::to_string(job)));
    }
    SweepDoneMsg done;
    done.cells = kCells;
    done.errors = kCells;
    done.errorsJson = merger.errorsJson(kMaxErrorsJson);
    EXPECT_LE(done.errorsJson.size(), kMaxErrorsJson);
    EXPECT_NE(done.errorsJson.find("{\"omitted\":"),
              std::string::npos);
    EXPECT_EQ(done.errorsJson.back(), ']');

    const std::vector<uint8_t> payload = done.encode();
    ASSERT_LE(payload.size(), kMaxFramePayload);
    const auto frame = encodeFrame(FrameType::SweepDone, payload);
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(frame.data(), frame.size()).ok());
    Frame out;
    bool have = false;
    ASSERT_TRUE(dec.next(&out, &have).ok());
    ASSERT_TRUE(have);
    auto d = SweepDoneMsg::decode(out.payload);
    ASSERT_TRUE(d.ok()) << d.status().toString();
    EXPECT_EQ(d->errorsJson, done.errorsJson);
}

TEST(ServiceMessages, StatusReplyRoundTrip)
{
    StatusReplyMsg reply;
    reply.ready = 1;
    reply.queueDepth = 3;
    reply.counters.storeHit = 11;
    reply.counters.protoErrors = 2;
    auto r = StatusReplyMsg::decode(reply.encode());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->ready, 1);
    EXPECT_EQ(r->queueDepth, 3u);
    EXPECT_EQ(r->counters.storeHit, 11u);
    EXPECT_EQ(r->counters.protoErrors, 2u);
}

TEST(ServiceMessages, ValidateRejectsBadEnumsAndGeometry)
{
    SweepRequestMsg req = sampleRequest();
    req.configs[1].mode = 17; // not a CloakingMode
    EXPECT_FALSE(req.validate().ok());
    EXPECT_FALSE(SweepRequestMsg::decode(req.encode()).ok());

    req = sampleRequest();
    req.configs[1].dpntAssoc = 3; // does not divide 8192 evenly
    req.configs[1].dpntEntries = 8192;
    // Geometry validation delegates to CloakingConfig::validate so a
    // bad request can never reach a panicking table constructor.
    const bool geometry_ok = req.configs[1].validate().ok();
    if (!geometry_ok) {
        EXPECT_FALSE(SweepRequestMsg::decode(req.encode()).ok());
    }

    req = sampleRequest();
    req.workloads.clear();
    EXPECT_FALSE(req.validate().ok());

    req = sampleRequest();
    req.scale = 0;
    EXPECT_FALSE(req.validate().ok());
}

TEST(ServiceMessages, WorkerJobRequestRoundTrip)
{
    JobRequestMsg req;
    req.token = 0xfeedfaceULL;
    req.workload = "factory.fuzz:42";
    req.scale = 3;
    req.maxInsts = 77777;
    req.deadlineMs = 2500;
    req.fault = (uint8_t)WorkerFault::Crash;
    req.config.cloakEnabled = 1;
    req.config.mode = 1;
    EXPECT_TRUE(req.validate().ok());
    auto r = JobRequestMsg::decode(req.encode());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->token, req.token);
    EXPECT_EQ(r->workload, req.workload);
    EXPECT_EQ(r->scale, 3u);
    EXPECT_EQ(r->maxInsts, 77777u);
    EXPECT_EQ(r->deadlineMs, 2500u);
    EXPECT_EQ(r->fault, (uint8_t)WorkerFault::Crash);
    EXPECT_EQ(r->config.cloakEnabled, 1);
    EXPECT_EQ(r->config.mode, 1);
}

TEST(ServiceMessages, WorkerResultHelloHeartbeatRoundTrip)
{
    JobResultMsg res;
    res.token = 21;
    res.errorCode = (uint8_t)StatusCode::DeadlineExceeded;
    res.errorMsg = "watchdog";
    res.stats.instructions = 1000;
    res.stats.cycles = 4242;
    auto r = JobResultMsg::decode(res.encode());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->token, 21u);
    EXPECT_EQ(r->error().code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(r->error().message(), "watchdog");
    EXPECT_EQ(r->stats.instructions, 1000u);
    EXPECT_EQ(r->stats.cycles, 4242u);

    WorkerHelloMsg hello;
    hello.pid = 12345;
    auto h = WorkerHelloMsg::decode(hello.encode());
    ASSERT_TRUE(h.ok()) << h.status().toString();
    EXPECT_EQ(h->pid, 12345u);
    EXPECT_EQ(h->protoVersion, kWorkerProtoVersion);

    WorkerHeartbeatMsg beat;
    beat.token = 21;
    beat.seq = 9;
    auto b = WorkerHeartbeatMsg::decode(beat.encode());
    ASSERT_TRUE(b.ok()) << b.status().toString();
    EXPECT_EQ(b->token, 21u);
    EXPECT_EQ(b->seq, 9u);
}

TEST(ServiceMessages, AgentHelloAndHeartbeatRoundTrip)
{
    AgentHelloMsg hello;
    hello.pid = 4242;
    hello.slots = 16;
    auto h = AgentHelloMsg::decode(hello.encode());
    ASSERT_TRUE(h.ok()) << h.status().toString();
    EXPECT_EQ(h->pid, 4242u);
    EXPECT_EQ(h->protoVersion, kAgentProtoVersion);
    EXPECT_EQ(h->slots, 16u);

    // Slot counts outside 1..4096 cannot have come from a sane
    // agent; the decoder must refuse them rather than let a corrupt
    // hello size dispatcher-side bookkeeping.
    AgentHelloMsg bad;
    bad.slots = 0;
    EXPECT_FALSE(AgentHelloMsg::decode(bad.encode()).ok());
    bad.slots = 5000;
    EXPECT_FALSE(AgentHelloMsg::decode(bad.encode()).ok());

    AgentHeartbeatMsg beat;
    beat.leaseId = 77;
    beat.seq = 3;
    auto b = AgentHeartbeatMsg::decode(beat.encode());
    ASSERT_TRUE(b.ok()) << b.status().toString();
    EXPECT_EQ(b->leaseId, 77u);
    EXPECT_EQ(b->seq, 3u);
}

TEST(ServiceMessages, LeaseRequestAndResultRoundTrip)
{
    LeaseRequestMsg lease;
    lease.leaseId = 0xabcdef01ULL;
    lease.leaseMs = 12000;
    lease.job.token = 7;
    lease.job.workload = "compress";
    lease.job.scale = 2;
    lease.job.maxInsts = 50000;
    lease.job.deadlineMs = 10000;
    lease.job.config.cloakEnabled = 1;
    EXPECT_TRUE(lease.validate().ok());
    auto l = LeaseRequestMsg::decode(lease.encode());
    ASSERT_TRUE(l.ok()) << l.status().toString();
    EXPECT_EQ(l->leaseId, lease.leaseId);
    EXPECT_EQ(l->leaseMs, 12000u);
    EXPECT_EQ(l->job.token, 7u);
    EXPECT_EQ(l->job.workload, "compress");
    EXPECT_EQ(l->job.maxInsts, 50000u);
    EXPECT_EQ(l->job.config.cloakEnabled, 1);

    LeaseResultMsg result;
    result.leaseId = 0xabcdef01ULL;
    result.result.token = 7;
    result.result.errorCode = (uint8_t)StatusCode::NotFound;
    result.result.errorMsg = "unknown workload";
    result.result.stats.cycles = 99;
    auto r = LeaseResultMsg::decode(result.encode());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->leaseId, result.leaseId);
    EXPECT_EQ(r->result.error().code(), StatusCode::NotFound);
    EXPECT_EQ(r->result.error().message(), "unknown workload");
    EXPECT_EQ(r->result.stats.cycles, 99u);

    // Trailing garbage after a well-formed message means a framing
    // bug upstream; the embedded-message decoders must reject it.
    std::vector<uint8_t> padded = lease.encode();
    padded.push_back(0);
    EXPECT_FALSE(LeaseRequestMsg::decode(padded).ok());
}

TEST(ServiceMessages, DecodersSurviveRandomBytes)
{
    // Random payload fuzz against every message decoder: whatever
    // the bytes, the decoder must return a Status — never panic,
    // never hand out an un-validated enum.
    Rng rng(0xbeefULL);
    for (int round = 0; round < 2000; ++round) {
        std::vector<uint8_t> bytes(rng.below(200));
        for (uint8_t &b : bytes)
            b = (uint8_t)rng.below(256);
        auto req = SweepRequestMsg::decode(bytes);
        if (req.ok()) {
            EXPECT_TRUE(req->validate().ok());
            for (const CellConfigMsg &c : req->configs)
                EXPECT_TRUE(c.validate().ok());
        }
        auto row = RowMsg::decode(bytes);
        if (row.ok()) {
            EXPECT_LE(row->errorCode,
                      (uint8_t)StatusCode::Unavailable);
        }
        (void)SweepDoneMsg::decode(bytes);
        (void)ErrorReplyMsg::decode(bytes);
        (void)StatusReplyMsg::decode(bytes);
        auto job = JobRequestMsg::decode(bytes);
        if (job.ok()) {
            EXPECT_TRUE(job->config.validate().ok());
        }
        auto result = JobResultMsg::decode(bytes);
        if (result.ok()) {
            EXPECT_LE(result->errorCode,
                      (uint8_t)StatusCode::Unavailable);
        }
        (void)WorkerHelloMsg::decode(bytes);
        (void)WorkerHeartbeatMsg::decode(bytes);
        auto ahello = AgentHelloMsg::decode(bytes);
        if (ahello.ok()) {
            EXPECT_GE(ahello->slots, 1u);
            EXPECT_LE(ahello->slots, 4096u);
        }
        (void)AgentHeartbeatMsg::decode(bytes);
        auto alease = LeaseRequestMsg::decode(bytes);
        if (alease.ok()) {
            EXPECT_TRUE(alease->job.config.validate().ok());
        }
        auto aresult = LeaseResultMsg::decode(bytes);
        if (aresult.ok()) {
            EXPECT_LE(aresult->result.errorCode,
                      (uint8_t)StatusCode::Unavailable);
        }
    }
}

// ------------------------------------------------------ fingerprint

TEST(ServiceFingerprint, SensitiveToEveryInput)
{
    const SweepRequestMsg req = sampleRequest();
    const CellConfigMsg &cfg = req.configs[1];
    const uint64_t base = cellFingerprint("li", cfg, 1, 1000);

    EXPECT_EQ(cellFingerprint("li", cfg, 1, 1000), base);
    EXPECT_NE(cellFingerprint("com", cfg, 1, 1000), base);
    EXPECT_NE(cellFingerprint("li", cfg, 2, 1000), base);
    EXPECT_NE(cellFingerprint("li", cfg, 1, 1001), base);

    CellConfigMsg other = cfg;
    other.dpntEntries *= 2;
    EXPECT_NE(cellFingerprint("li", other, 1, 1000), base);
    other = cfg;
    other.recovery = (uint8_t)RecoveryModel::Squash;
    EXPECT_NE(cellFingerprint("li", other, 1, 1000), base);
}

} // namespace
} // namespace rarpred::service
