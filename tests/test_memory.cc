/**
 * @file
 * Unit tests for the memory hierarchy: cache tag store, combining
 * write buffers and the full latency model of Section 5.1.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/memory_system.hh"
#include "memory/write_buffer.hh"

namespace rarpred {
namespace {

TEST(Cache, MissThenHit)
{
    Cache c({"c", 1024, 16, 2, 2});
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    // Same block, different offset.
    EXPECT_TRUE(c.access(0x10f, false));
    // Next block misses.
    EXPECT_FALSE(c.access(0x110, false));
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, SetConflictEviction)
{
    // 4 blocks, 2-way: 2 sets, 16-byte blocks. Blocks 0x000, 0x020,
    // 0x040 share set 0.
    Cache c({"c", 64, 16, 2, 1});
    c.access(0x000, false);
    c.access(0x020, false);
    c.access(0x040, false); // evicts 0x000
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x020));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, LruWithinSet)
{
    Cache c({"c", 64, 16, 2, 1});
    c.access(0x000, false);
    c.access(0x020, false);
    c.access(0x000, false); // touch -> MRU
    c.access(0x040, false); // evicts 0x020
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x020));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c({"c", 64, 16, 2, 1});
    std::optional<Cache::Writeback> wb;
    c.access(0x000, true, &wb); // write miss, allocate dirty
    EXPECT_FALSE(wb.has_value());
    c.access(0x020, false, &wb);
    c.access(0x040, false, &wb); // evicts dirty 0x000
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->blockAddr, 0x000u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c({"c", 64, 16, 2, 1});
    std::optional<Cache::Writeback> wb;
    c.access(0x000, false, &wb);
    c.access(0x020, false, &wb);
    c.access(0x040, false, &wb);
    EXPECT_FALSE(wb.has_value());
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c({"c", 64, 16, 2, 1});
    std::optional<Cache::Writeback> wb;
    c.access(0x000, false, &wb); // clean allocate
    c.access(0x000, true, &wb);  // hit, mark dirty
    c.access(0x020, false, &wb);
    c.access(0x040, false, &wb); // evicts 0x000, now dirty
    ASSERT_TRUE(wb.has_value());
}

TEST(Cache, Invalidate)
{
    Cache c({"c", 64, 16, 2, 1});
    c.access(0x000, false);
    c.invalidate(0x000);
    EXPECT_FALSE(c.probe(0x000));
}

TEST(WriteBuffer, CombinesSameBlock)
{
    WriteBuffer wb(4, 64, 10);
    wb.push(0x100, 0);
    wb.push(0x108, 0); // same 64-byte block
    EXPECT_EQ(wb.occupancy(), 1u);
    EXPECT_EQ(wb.combines(), 1u);
}

TEST(WriteBuffer, DrainsOverTime)
{
    WriteBuffer wb(4, 64, 10);
    wb.push(0x100, 0); // drains at cycle 10
    EXPECT_TRUE(wb.contains(0x100, 5));
    EXPECT_FALSE(wb.contains(0x100, 10));
}

TEST(WriteBuffer, FullBufferStallsUntilDrain)
{
    WriteBuffer wb(2, 64, 10);
    EXPECT_EQ(wb.push(0x000, 0), 0u); // drains at 10
    EXPECT_EQ(wb.push(0x040, 0), 0u); // drains at 20
    // Buffer full: the third push stalls until the first drains.
    EXPECT_EQ(wb.push(0x080, 0), 10u);
    EXPECT_EQ(wb.fullStalls(), 1u);
}

TEST(WriteBuffer, SerialDrainOrder)
{
    WriteBuffer wb(8, 64, 10);
    wb.push(0x000, 0);
    wb.push(0x040, 0);
    // The second block drains behind the first.
    EXPECT_TRUE(wb.contains(0x040, 15));
    EXPECT_FALSE(wb.contains(0x040, 20));
}

TEST(MemorySystem, L1HitLatency)
{
    MemorySystem mem({});
    (void)mem.load(0x1000, 0);           // cold miss
    EXPECT_EQ(mem.load(0x1000, 100), 2u); // L1 hit
}

TEST(MemorySystem, ColdMissGoesToMainMemory)
{
    MemorySystem mem({});
    // L1 (2) + L2 (10) + memory (50)
    EXPECT_EQ(mem.load(0x1000, 0), 62u);
}

TEST(MemorySystem, L2HitAfterL1Eviction)
{
    MemorySystemConfig config;
    // Shrink L1 so we can evict easily; keep L2 big.
    config.l1d = {"l1d", 64, 16, 2, 2};
    MemorySystem mem(config);
    (void)mem.load(0x000, 0);
    // Evict 0x000 from L1 set 0 (blocks 0x020, 0x040).
    (void)mem.load(0x020, 1);
    (void)mem.load(0x040, 2);
    // Now an L1 miss, L2 hit: 2 + 10.
    EXPECT_EQ(mem.load(0x000, 3), 12u);
}

TEST(MemorySystem, StoresAbsorbedByHierarchy)
{
    MemorySystem mem({});
    unsigned first = mem.store(0x2000, 0);
    EXPECT_GE(first, 2u);
    EXPECT_EQ(mem.store(0x2000, 10), 2u); // L1 hit after allocate
}

TEST(MemorySystem, IfetchUsesICache)
{
    MemorySystem mem({});
    unsigned cold = mem.ifetch(0x0, 0);
    EXPECT_GT(cold, 2u);
    EXPECT_EQ(mem.ifetch(0x4, 1), 2u); // same block, L1I hit
}

TEST(MemorySystem, ICacheAndDCacheAreSeparate)
{
    MemorySystem mem({});
    (void)mem.load(0x3000, 0);
    // Same address on the instruction side still cold.
    EXPECT_GT(mem.ifetch(0x3000, 1), 2u);
}

TEST(MemorySystem, StatsAccumulate)
{
    MemorySystem mem({});
    (void)mem.load(0x1000, 0);
    (void)mem.load(0x1000, 1);
    EXPECT_EQ(mem.l1d().misses(), 1u);
    EXPECT_EQ(mem.l1d().hits(), 1u);
}

} // namespace
} // namespace rarpred
