/**
 * @file
 * Full-stack matrix: every synthetic benchmark through the cloaking
 * engine and the timing model, checking the invariants that must hold
 * regardless of workload shape.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_cpu.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred {
namespace {

constexpr uint64_t kCap = 500'000; // instructions per run: keep it fast

class MatrixTest : public ::testing::TestWithParam<const char *>
{
  protected:
    const Workload &workload() const { return findWorkload(GetParam()); }
};

TEST_P(MatrixTest, AdaptiveCloakingInvariants)
{
    CloakingConfig config;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.sf = {1024, 2};
    CloakingEngine engine(config);
    Program p = workload().build(1);
    MicroVM vm(p);
    vm.run(engine, kCap);
    const auto &s = engine.stats();
    ASSERT_GT(s.loads, 0u);
    // The adaptive automaton keeps misspeculation low on every
    // program (Figure 6's defining property).
    EXPECT_LT(s.mispredictionRate(), 0.05) << GetParam();
    // Speculated loads are a subset of all loads.
    EXPECT_LE(s.covered() + s.mispredicted(), s.loads);
    // Detections are per-load events.
    EXPECT_LE(s.detectedRaw + s.detectedRar, s.loads);
}

TEST_P(MatrixTest, RawOnlyCoverageIsSubsetOfCombined)
{
    auto run = [&](CloakingMode mode) {
        CloakingConfig config;
        config.mode = mode;
        config.ddt.entries = 128;
        CloakingEngine engine(config);
        Program p = workload().build(1);
        MicroVM vm(p);
        vm.run(engine, kCap);
        return engine.stats().coverage();
    };
    // The combined mechanism never covers fewer loads than RAW alone
    // by more than a whisker (shared-DDT interference is the paper's
    // anomaly and stays small).
    EXPECT_GE(run(CloakingMode::RawPlusRar) + 0.02,
              run(CloakingMode::RawOnly))
        << GetParam();
}

TEST_P(MatrixTest, TimingModelBounds)
{
    CpuConfig config;
    OooCpu cpu(config, {});
    Program p = workload().build(1);
    MicroVM vm(p);
    vm.run(cpu, kCap);
    const auto &s = cpu.stats();
    EXPECT_GT(s.ipc(), 0.1) << GetParam();
    EXPECT_LE(s.ipc(), 8.0) << GetParam();
    EXPECT_EQ(s.loads + s.stores > 0, true);
}

TEST_P(MatrixTest, SelectiveCloakingNeverHurtsMuch)
{
    auto cycles = [&](bool cloak_on) {
        CpuConfig config;
        CloakTimingConfig cloak;
        if (cloak_on) {
            cloak.enabled = true;
            cloak.engine.ddt.entries = 128;
            cloak.engine.dpnt.geometry = {8192, 2};
            cloak.engine.sf = {1024, 2};
        }
        OooCpu cpu(config, cloak);
        Program p = workload().build(1);
        MicroVM vm(p);
        vm.run(cpu, kCap);
        return cpu.stats().cycles;
    };
    // Selective invalidation bounds the downside (Figure 9: speedups
    // or noise, never real slowdowns).
    EXPECT_LT((double)cycles(true), 1.02 * (double)cycles(false))
        << GetParam();
}

TEST_P(MatrixTest, ConservativeNeverFasterThanNaive)
{
    auto cycles = [&](MemDepPolicy policy) {
        CpuConfig config;
        config.memDep = policy;
        OooCpu cpu(config, {});
        Program p = workload().build(1);
        MicroVM vm(p);
        vm.run(cpu, kCap);
        return cpu.stats().cycles;
    };
    EXPECT_LE((double)cycles(MemDepPolicy::Naive),
              1.01 * (double)cycles(MemDepPolicy::Conservative))
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, MatrixTest,
    ::testing::Values("go", "m88", "gcc", "com", "li", "ijp", "per",
                      "vor", "tom", "swm", "su2", "hyd", "mgd", "apl",
                      "trb", "aps", "fp*", "wav"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (!isalnum((unsigned char)c))
                c = '_';
        return name;
    });

} // namespace
} // namespace rarpred
